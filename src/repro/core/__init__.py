"""The paper's primary contributions.

* :mod:`repro.core.metrics` — APA and LLPD, the routing-agnostic measures
  of a topology's low-latency path diversity (§2);
* :mod:`repro.core.prediction` — Algorithm 1, the conservative next-minute
  mean-rate predictor (§4);
* :mod:`repro.core.multiplexing` — the temporal-correlation and
  FFT-convolution statistical-multiplexing checks (§5);
* :mod:`repro.core.headroom` — the headroom dial (§4);
* :mod:`repro.core.ldr` — Low Delay Routing: the iterative latency-optimal
  LP combined with automatic headroom tuning (§5).
"""

from repro.core.metrics import ApaParameters, apa_all_pairs, llpd, pair_apa
from repro.core.prediction import MeanRatePredictor, predict_series
from repro.core.multiplexing import (
    LinkCheck,
    check_link_multiplexing,
    exceedance_probability,
    transient_queue_delay_s,
)
from repro.core.headroom import minmax_equivalent_headroom
from repro.core.ldr import LdrConfig, LdrController, LdrResult

__all__ = [
    "ApaParameters",
    "apa_all_pairs",
    "llpd",
    "pair_apa",
    "MeanRatePredictor",
    "predict_series",
    "LinkCheck",
    "check_link_multiplexing",
    "exceedance_probability",
    "transient_queue_delay_s",
    "minmax_equivalent_headroom",
    "LdrConfig",
    "LdrController",
    "LdrResult",
]

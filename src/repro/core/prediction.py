"""Algorithm 1: predicting the next minute's mean traffic level.

Verbatim from the paper:

    decay_multiplier <- 0.98   // 2% decay when level drops
    fixed_hedge      <- 1.1    // 10% hedge against growth
    scaled_est <- prev_value * fixed_hedge
    if scaled_est > prev_prediction then
        next_prediction <- scaled_est
    else
        decay_prediction <- prev_prediction * decay_multiplier
        next_prediction <- max(decay_prediction, scaled_est)

"This implements a simple conservative strategy: the estimate increases in
line with values measured during the last minute, and decays slowly when
the measured rate decreases.  The aim is aggregates can grow by 10% before
exceeding our target."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


@dataclass
class MeanRatePredictor:
    """Stateful one-step-ahead predictor of an aggregate's mean rate."""

    decay_multiplier: float = 0.98
    fixed_hedge: float = 1.1
    _prev_prediction: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.decay_multiplier <= 1.0:
            raise ValueError(
                f"decay multiplier must be in (0, 1], got {self.decay_multiplier}"
            )
        if self.fixed_hedge < 1.0:
            raise ValueError(f"hedge must be >= 1, got {self.fixed_hedge}")

    def update(self, measured_mean_bps: float) -> float:
        """Feed last minute's measured mean; returns next minute's prediction."""
        if measured_mean_bps < 0:
            raise ValueError(f"negative rate {measured_mean_bps}")
        scaled_est = measured_mean_bps * self.fixed_hedge
        if self._prev_prediction is None or scaled_est > self._prev_prediction:
            next_prediction = scaled_est
        else:
            decay_prediction = self._prev_prediction * self.decay_multiplier
            next_prediction = max(decay_prediction, scaled_est)
        self._prev_prediction = next_prediction
        return next_prediction

    @property
    def current_prediction(self) -> Optional[float]:
        return self._prev_prediction


def predict_series(
    minute_means_bps: Iterable[float],
    decay_multiplier: float = 0.98,
    fixed_hedge: float = 1.1,
) -> np.ndarray:
    """One-step-ahead predictions for a series of per-minute means.

    ``result[i]`` is the prediction for minute ``i+1`` made after observing
    minute ``i`` — compare ``means[i+1] / result[i]`` to reproduce the
    paper's Figure 9 CDF.
    """
    predictor = MeanRatePredictor(decay_multiplier, fixed_hedge)
    return np.array([predictor.update(float(m)) for m in minute_means_bps])


def prediction_ratios(minute_means_bps: np.ndarray, **kwargs) -> np.ndarray:
    """measured/predicted ratios across a trace (the Figure 9 quantity)."""
    means = np.asarray(minute_means_bps, dtype=float)
    if len(means) < 2:
        raise ValueError("need at least two minutes to score predictions")
    predictions = predict_series(means, **kwargs)
    return means[1:] / predictions[:-1]

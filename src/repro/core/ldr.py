"""LDR: Low Delay Routing (paper §5).

The controller iterates through the paper's three phases (its Figure 11):

1. **optimize** — run the iterative latency-optimal LP (Figure 13) with the
   current per-aggregate demand estimates;
2. **appraise** — for every link of the proposed placement, check whether
   the aggregates placed on it statistically multiplex: peak filter, then
   the temporal-correlation test, then the FFT-convolution test
   (Figure 14);
3. **tweak** — when a link fails, *scale up the demand estimates of the
   aggregates crossing it* and re-optimize.  "Scaling up aggregates serves
   to add headroom, but only for those aggregates that don't multiplex
   well.  The alternative — scaling down the link speed — is less
   effective, as it prevents other less variable aggregates being chosen
   to use the link instead."

Demand estimates start from Algorithm 1 predictions over each aggregate's
measured minute means, so headroom against mean drift (the 10% hedge) and
headroom against burstiness (the multiplexing loop) compose.

The tweak loop re-optimizes with scaled demands over largely unchanged
path sets; the LP layer's structure cache (see
:mod:`repro.routing.pathlp`) recognizes the repeats, so each extra round
pays for a solve, not a rebuild — ``warm_counts`` already keeps the
path-set growth warm across rounds for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.multiplexing import LinkCheck, check_link_multiplexing
from repro.core.prediction import MeanRatePredictor
from repro.net.graph import Network
from repro.net.paths import KspCache, path_links
from repro.routing.base import Placement, normalize_allocations
from repro.routing.optimal import solve_iterative_latency
from repro.tm.matrix import TrafficMatrix

Pair = Tuple[str, str]


@dataclass(frozen=True)
class LdrConfig:
    """Tuning of the LDR control loop (paper defaults)."""

    #: Transient queueing budget per link.
    max_queue_s: float = 0.010
    #: Reporting interval of ingress routers.
    interval_s: float = 0.1
    #: Multiplier applied to failing aggregates' demands per round.
    scale_up: float = 1.1
    #: Bound on optimize/appraise/tweak rounds.
    max_rounds: int = 10
    #: Quantization levels for the convolution test.
    levels: int = 1024

    def __post_init__(self) -> None:
        if self.scale_up <= 1.0:
            raise ValueError(f"scale-up must exceed 1, got {self.scale_up}")
        if self.max_rounds < 1:
            raise ValueError(f"need at least one round, got {self.max_rounds}")


@dataclass
class AggregateTraffic:
    """What an ingress router reports for one aggregate.

    ``samples_bps`` are the last measurement window's 100 ms rates;
    ``minute_means_bps`` the history of per-minute means (at least one).
    """

    src: str
    dst: str
    samples_bps: np.ndarray
    minute_means_bps: Sequence[float]

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"aggregate with equal endpoints {self.src!r}")
        if len(self.samples_bps) == 0:
            raise ValueError(f"{self.src}->{self.dst}: no samples")
        if len(self.minute_means_bps) == 0:
            raise ValueError(f"{self.src}->{self.dst}: no minute means")

    @property
    def pair(self) -> Pair:
        return (self.src, self.dst)


@dataclass
class LdrResult:
    """Outcome of one LDR routing cycle."""

    placement: Placement
    demands_bps: Dict[Pair, float]
    rounds: int
    #: Per-round lists of links that failed the multiplexing check.
    failed_links_history: List[List[Tuple[str, str]]]
    #: Final per-link check outcomes (only links that needed a full check).
    link_checks: Dict[Tuple[str, str], LinkCheck]

    @property
    def converged(self) -> bool:
        return not self.failed_links_history or not self.failed_links_history[-1]


class LdrController:
    """The centralized LDR controller for one network."""

    def __init__(
        self,
        network: Network,
        config: LdrConfig = LdrConfig(),
        cache: Optional[KspCache] = None,
    ) -> None:
        self.network = network
        self.config = config
        self.cache = cache if cache is not None else KspCache(network)
        # Predictor state persists across routing cycles, one per pair.
        self._predictors: Dict[Pair, MeanRatePredictor] = {}
        # Path counts persist across rounds (and across route() calls) so
        # each re-optimization is a warm start, not a rebuild from k=1.
        self._warm_counts: Dict[Pair, int] = {}

    # ------------------------------------------------------------------
    def predict_demands(
        self, traffic: Sequence[AggregateTraffic]
    ) -> Dict[Pair, float]:
        """Algorithm 1 estimates for each aggregate's next-minute mean."""
        demands: Dict[Pair, float] = {}
        for item in traffic:
            predictor = self._predictors.setdefault(item.pair, MeanRatePredictor())
            prediction = 0.0
            for mean in item.minute_means_bps:
                prediction = predictor.update(float(mean))
            demands[item.pair] = prediction
        return demands

    # ------------------------------------------------------------------
    def route(self, traffic: Sequence[AggregateTraffic]) -> LdrResult:
        """One full optimize/appraise/tweak cycle."""
        if not traffic:
            raise ValueError("no traffic to route")
        samples = {item.pair: np.asarray(item.samples_bps, float) for item in traffic}
        base_demands = self.predict_demands(traffic)
        scaling = {pair: 1.0 for pair in base_demands}

        failed_history: List[List[Tuple[str, str]]] = []
        link_checks: Dict[Tuple[str, str], LinkCheck] = {}
        result = None
        rounds = 0
        for rounds in range(1, self.config.max_rounds + 1):
            demands = {
                pair: base_demands[pair] * scaling[pair] for pair in base_demands
            }
            tm = TrafficMatrix(demands)
            result, stats = solve_iterative_latency(
                self.network, tm, cache=self.cache, warm_counts=self._warm_counts
            )
            if not stats.fits:
                # The scaled demands no longer fit the network at all: no
                # amount of further scaling can help, so report the best
                # placement found and stop.  Any checks kept from the
                # previous round describe a different placement, so they
                # must not be reported against this one.
                link_checks = {}
                failed_history.append(
                    list(result.overloaded_links(only_maximal=False))
                )
                break

            # Which aggregates ride which links, and with what share.
            link_members: Dict[Tuple[str, str], List[np.ndarray]] = {}
            link_aggregates: Dict[Tuple[str, str], List[Pair]] = {}
            for agg, splits in result.fractions.items():
                for path, fraction in splits:
                    if fraction <= 1e-9:
                        continue
                    share = samples[agg.pair] * fraction
                    for key in path_links(path):
                        link_members.setdefault(key, []).append(share)
                        link_aggregates.setdefault(key, []).append(agg.pair)

            failing: List[Tuple[str, str]] = []
            link_checks = {}
            for key, members in link_members.items():
                check = check_link_multiplexing(
                    members,
                    self.network.link(*key).capacity_bps,
                    max_queue_s=self.config.max_queue_s,
                    interval_s=self.config.interval_s,
                    levels=self.config.levels,
                )
                if check.decided_by != "peak-filter":
                    link_checks[key] = check
                if not check.passed:
                    failing.append(key)
            failed_history.append(failing)
            if not failing:
                break
            # Tweak: scale up the aggregates crossing failing links.
            to_scale = {
                pair for key in failing for pair in link_aggregates.get(key, [])
            }
            for pair in to_scale:
                scaling[pair] *= self.config.scale_up

        if result is None:
            raise RuntimeError(
                "LDR multiplexing loop completed without an LP solve; "
                "max_rounds must be >= 1"
            )
        placement = Placement(
            self.network, normalize_allocations(result.fractions)
        )
        final_demands = {
            pair: base_demands[pair] * scaling[pair] for pair in base_demands
        }
        return LdrResult(
            placement=placement,
            demands_bps=final_demands,
            rounds=rounds,
            failed_links_history=failed_history,
            link_checks=link_checks,
        )

"""APA and LLPD: measuring a topology's low-latency path diversity (§2).

For each PoP pair we take its lowest-delay path and ask, for every physical
link on that path, whether traffic could be routed *around* that link
without excessive extra delay and without losing capacity:

* alternates are paths in the network with the link removed, considered in
  increasing delay order;
* a set of alternates is *viable* once its joint min-cut reaches the
  bottleneck capacity of the original shortest path ("it is unreasonable to
  consider a 1 Gb/s link as providing a viable alternate to a congested
  100 Gb/s path");
* the delay of the alternate is the delay of the last (n-th) path added,
  and the link counts as routable-around if that delay is within the
  stretch limit (1.4 by default).

APA(pair) = fraction of links on the pair's shortest path that are
routable-around.  LLPD(network) = fraction of pairs with APA >= 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.flows import max_flow_bps
from repro.net.graph import Network
from repro.net.paths import (
    all_pairs_shortest_paths,
    k_shortest_paths,
    path_bottleneck_bps,
    path_delay_s,
    path_links,
)

Pair = Tuple[str, str]


@dataclass(frozen=True)
class ApaParameters:
    """Knobs of the APA computation, with the paper's defaults."""

    #: Maximum acceptable delay stretch of a viable alternate (1.4 = 40%).
    stretch_limit: float = 1.4
    #: How many lowest-latency alternates may be combined for capacity.
    max_alternates: int = 8
    #: APA threshold defining "good" pairs for LLPD.
    llpd_threshold: float = 0.7

    def __post_init__(self) -> None:
        if self.stretch_limit < 1.0:
            raise ValueError(f"stretch limit must be >= 1, got {self.stretch_limit}")
        if self.max_alternates < 1:
            raise ValueError(
                f"need at least one alternate, got {self.max_alternates}"
            )
        if not 0.0 <= self.llpd_threshold <= 1.0:
            raise ValueError(
                f"LLPD threshold must be in [0, 1], got {self.llpd_threshold}"
            )


class _ReducedNetworkCache:
    """Per-physical-link copies of the network with that link removed.

    Every pair whose shortest path crosses a given physical link shares the
    same reduced network, so building it once per link (not once per
    pair-link combination) is the main APA speedup.
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._cache: Dict[Tuple[str, str], Network] = {}

    def without(self, u: str, v: str) -> Network:
        key = (min(u, v), max(u, v))
        if key not in self._cache:
            self._cache[key] = self._network.without_duplex_link(u, v)
        return self._cache[key]


def _link_routable_around(
    network: Network,
    reduced: Network,
    src: str,
    dst: str,
    shortest_delay_s: float,
    required_bps: float,
    params: ApaParameters,
) -> bool:
    """Can (src, dst) traffic avoid the removed link within the stretch limit?"""
    delay_budget = shortest_delay_s * params.stretch_limit
    alternates: List[Tuple[str, ...]] = []
    union_links: set = set()
    for path in k_shortest_paths(reduced, src, dst):
        delay = path_delay_s(reduced, path)
        if delay > delay_budget + 1e-12:
            # Paths arrive in non-decreasing delay order: nothing after
            # this one can be within budget either.
            return False
        alternates.append(path)
        union_links.update(path_links(path))
        if len(alternates) == 1:
            # Single-alternate fast path: its own bottleneck may suffice.
            if path_bottleneck_bps(reduced, path) >= required_bps:
                return True
        else:
            joint = max_flow_bps(reduced, src, dst, restrict_links=union_links)
            if joint >= required_bps:
                return True
        if len(alternates) >= params.max_alternates:
            return False
    return False


def pair_apa(
    network: Network,
    src: str,
    dst: str,
    params: ApaParameters = ApaParameters(),
    shortest: Optional[Tuple[str, ...]] = None,
    reduced_cache: Optional[_ReducedNetworkCache] = None,
) -> float:
    """Alternate path availability for one PoP pair, in [0, 1]."""
    from repro.net.paths import shortest_path

    if shortest is None:
        shortest = shortest_path(network, src, dst)
    reduced_cache = reduced_cache or _ReducedNetworkCache(network)
    shortest_delay = path_delay_s(network, shortest)
    required = path_bottleneck_bps(network, shortest)
    links = path_links(shortest)
    routable = 0
    for u, v in links:
        reduced = reduced_cache.without(u, v)
        if _link_routable_around(
            network, reduced, src, dst, shortest_delay, required, params
        ):
            routable += 1
    return routable / len(links)


def apa_all_pairs(
    network: Network, params: ApaParameters = ApaParameters()
) -> Dict[Pair, float]:
    """APA for every connected ordered PoP pair.

    Inherently quadratic (the paper's Figure 1 wants the full APA CDF);
    only ever run on zoo-scale networks, hence the D108 allowance.
    """
    shortest_paths = all_pairs_shortest_paths(network)  # analysis: allow[D108]
    cache = _ReducedNetworkCache(network)
    return {
        (src, dst): pair_apa(network, src, dst, params, path, cache)
        for (src, dst), path in shortest_paths.items()
    }


def apa_cdf(apa_values: Dict[Pair, float]) -> np.ndarray:
    """Sorted APA values: the per-network curves of the paper's Figure 1."""
    return np.sort(np.fromiter(apa_values.values(), dtype=float))


def llpd(
    network: Network, params: ApaParameters = ApaParameters()
) -> float:
    """Low latency path diversity: fraction of pairs with APA >= 0.7.

    "An LLPD of close to one indicates that for most PoP pairs, we can
    route around most of the links on their shortest path without incurring
    excessive delay."
    """
    values = apa_all_pairs(network, params)
    if not values:
        raise ValueError(f"network {network.name!r} has no connected pairs")
    good = sum(1 for value in values.values() if value >= params.llpd_threshold)
    return good / len(values)


def llpd_from_apa(
    apa_values: Dict[Pair, float], threshold: float = 0.7
) -> float:
    """LLPD computed from precomputed APA values (avoids recomputation)."""
    if not apa_values:
        raise ValueError("no APA values")
    good = sum(1 for value in apa_values.values() if value >= threshold)
    return good / len(apa_values)

"""Shared analyzer plumbing: findings, severities, AST pass protocol.

Every pass (:mod:`repro.analysis.determinism`,
:mod:`repro.analysis.spawnsafe`, :mod:`repro.analysis.schema`) consumes
parsed :class:`ModuleSource` objects and yields :class:`Finding` records;
the CLI (:mod:`repro.analysis.__main__`) renders them and gates on
severity.  The plumbing here keeps the passes small:

* :class:`ModuleSource` parses a file once and lazily builds a
  child-to-parent node map, so passes can ask "is this ``set(...)`` call
  wrapped in ``sorted(...)``" without re-walking the tree.
* **Suppression pragmas**: a line whose source contains
  ``# analysis: allow`` (any rule) or ``# analysis: allow[D102]``
  (one rule) never produces a finding.  This is the allowlist mechanism
  for *intentional* nondeterminism — e.g. the wall-clock read that
  ``store gc --max-age-days`` fundamentally needs.  A module whose first
  non-code lines (before any statement past the docstring) contain
  ``# analysis: allow-module[D102]`` suppresses the listed rules for the
  whole file — for modules like :mod:`repro.experiments.telemetry` whose
  entire purpose is the sanctioned exception, declared once at the top
  instead of per line.  ``allow-module`` always names rules explicitly;
  there is deliberately no blanket whole-file opt-out.
* :func:`fingerprint` gives findings a line-number-free identity, so a
  committed baseline survives unrelated edits above a legacy finding.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Finding severity; the CLI gates its exit code on a threshold."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; choose from "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic, anchored to a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    #: The stripped source line the finding anchors to; part of the
    #: baseline fingerprint so renumbering edits do not churn baselines.
    context: str = ""

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity.name.lower()} "
            f"[{self.rule}] {self.message}"
        )

    def to_jsonable(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }


def fingerprint(finding: Finding) -> str:
    """Line-number-free identity used by the baseline file."""
    return f"{finding.rule}|{finding.path}|{finding.context}"


_PRAGMA = re.compile(
    r"#\s*analysis:\s*allow(?!-module)(?:\[([A-Za-z0-9_,\s]+)\])?"
)
_MODULE_PRAGMA = re.compile(
    r"#\s*analysis:\s*allow-module\[([A-Za-z0-9_,\s]+)\]"
)


class ModuleSource:
    """One parsed source file plus the lazy indexes passes share."""

    def __init__(self, path: str, text: str, rel_path: Optional[str] = None):
        self.path = path
        #: Path rendered in findings (relative to the analysis root).
        self.rel_path = rel_path or path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        #: Rules a header ``# analysis: allow-module[...]`` pragma
        #: suppresses for the entire file.
        self.module_allowed = self._scan_module_pragma()

    def _scan_module_pragma(self) -> frozenset:
        """Rules named by ``allow-module`` pragmas in the module header.

        Only the header counts — lines before the first statement after
        the module docstring — so a stray pragma deep in a file cannot
        silently blanket it.
        """
        body = self.tree.body
        start = 0
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            start = 1
        if len(body) > start:
            limit = body[start].lineno - 1
        else:
            limit = len(self.lines)
        rules = set()
        for line in self.lines[:limit]:
            match = _MODULE_PRAGMA.search(line)
            if match is not None:
                rules.update(r.strip() for r in match.group(1).split(","))
        return frozenset(r for r in rules if r)

    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child-to-parent map over the whole tree (built on first use)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ------------------------------------------------------------------
    def allowed(self, lineno: int, rule: str) -> bool:
        """Whether a suppression pragma covers ``rule`` on this line."""
        if rule in self.module_allowed:
            return True
        if not 1 <= lineno <= len(self.lines):
            return False
        match = _PRAGMA.search(self.lines[lineno - 1])
        if match is None:
            return False
        rules = match.group(1)
        if rules is None:
            return True
        return rule in {r.strip() for r in rules.split(",")}

    def finding(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
    ) -> Optional[Finding]:
        """Build a finding for ``node`` unless a pragma suppresses it."""
        lineno = getattr(node, "lineno", 1)
        if self.allowed(lineno, rule):
            return None
        return Finding(
            rule=rule,
            severity=severity,
            path=self.rel_path,
            line=lineno,
            message=message,
            context=self.line_text(lineno),
        )


class Pass:
    """One analyzer pass: a named bundle of related rules.

    ``check_module`` runs per file; ``check_tree`` runs once over the
    whole file set (for cross-module rules like schema drift and the
    scheme-registry round-trip, which cannot be judged one file at a
    time).  Either hook may be a no-op.
    """

    name: str = "pass"
    #: rule id -> one-line description, for ``--list-rules``.
    rules: Dict[str, str] = {}

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_tree(
        self, modules: Sequence[ModuleSource]
    ) -> Iterator[Finding]:
        return iter(())


# ----------------------------------------------------------------------
# Small AST helpers the passes share
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name a call targets, if statically nameable."""
    return dotted_name(node.func)


def string_keys(node: ast.Dict) -> List[str]:
    """The constant string keys of a dict literal."""
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
    return keys


@dataclass
class AnnotationScope:
    """Variable annotations visible inside one function (or module).

    Tracks ``name -> annotation AST`` from parameter annotations and
    ``AnnAssign`` statements, which is exactly enough to answer "does
    this loop iterate a value annotated as a set" — including through
    one level of ``Dict[..., Set[...]]`` subscripting.
    """

    annotations: Dict[str, ast.expr] = field(default_factory=dict)

    @classmethod
    def of(cls, func: ast.AST) -> "AnnotationScope":
        scope = cls()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = func.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                if arg.annotation is not None:
                    scope.annotations[arg.arg] = arg.annotation
            body: Sequence[ast.stmt] = func.body
        else:
            body = getattr(func, "body", [])
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                scope.annotations[stmt.target.id] = stmt.annotation
        return scope

    # ------------------------------------------------------------------
    def annotation_of(self, node: ast.expr) -> Optional[ast.expr]:
        """The annotation of an expression, resolved structurally.

        ``Name`` resolves directly; ``mapping[key]`` resolves to the
        value type of a ``Dict``/``Mapping`` annotation on ``mapping``.
        """
        if isinstance(node, ast.Name):
            return self.annotations.get(node.id)
        if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name
        ):
            container = self.annotations.get(node.value.id)
            if container is None:
                return None
            base = dotted_name(
                container.value
                if isinstance(container, ast.Subscript)
                else container
            )
            if base is None:
                return None
            if base.split(".")[-1] not in (
                "Dict", "dict", "Mapping", "MutableMapping", "DefaultDict",
                "defaultdict", "OrderedDict",
            ):
                return None
            if not isinstance(container, ast.Subscript):
                return None
            args = container.slice
            if isinstance(args, ast.Tuple) and len(args.elts) == 2:
                return args.elts[1]
        return None


SET_ANNOTATION_NAMES = frozenset(
    {"Set", "FrozenSet", "AbstractSet", "MutableSet", "set", "frozenset"}
)


def is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    """Whether an annotation AST denotes a set type."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted_name(annotation)
    if name is None:
        return False
    return name.split(".")[-1] in SET_ANNOTATION_NAMES


def enclosing_function(
    module: ModuleSource, node: ast.AST
) -> Optional[ast.AST]:
    """The nearest enclosing function def, or ``None`` at module level."""
    current = module.parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = module.parent(current)
    return None

"""CLI for the static analyzer: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — no non-baselined findings at or above the gate
severity; 1 — findings; 2 — usage or baseline error.  ``--format json``
emits a machine-readable report (the CI gate parses it);
``--write-baseline`` records the current findings so a new rule can
land without blocking on legacy code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import all_passes, analyze_paths, rule_table
from repro.analysis.base import Finding, Severity
from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)

DEFAULT_PATHS = ("src/repro",)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Codebase-specific static analysis: determinism, "
            "spawn-safety and schema-drift passes."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json includes every finding plus counts)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="subtract the findings recorded in this baseline file "
        "before reporting and gating",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--min-severity",
        default="warning",
        metavar="LEVEL",
        help="gate exit code 1 on findings at or above this severity "
        "(info|warning|error; lower ones are still reported)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(rule_table().items()):
            print(f"{rule}  {description}")
        return 0

    try:
        threshold = Severity.parse(args.min_severity)
    except ValueError as exc:
        print(f"analysis: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or list(DEFAULT_PATHS)
    findings = analyze_paths(paths, passes=all_passes())

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"analysis: wrote {len(findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"analysis: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)

    gating = [f for f in findings if f.severity >= threshold]

    if args.format == "json":
        print(json.dumps(_json_report(findings, gating, suppressed), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            f"analysis: {len(findings)} finding(s), "
            f"{len(gating)} at/above {threshold.name.lower()}"
        )
        if suppressed:
            summary += f", {suppressed} baselined"
        print(summary)
    return 1 if gating else 0


def _json_report(
    findings: List[Finding], gating: List[Finding], suppressed: int
) -> dict:
    by_rule: dict = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "findings": [f.to_jsonable() for f in findings],
        "counts": {
            "total": len(findings),
            "gating": len(gating),
            "baselined": suppressed,
            "by_rule": dict(sorted(by_rule.items())),
        },
    }


if __name__ == "__main__":
    raise SystemExit(main())

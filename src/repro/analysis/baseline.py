"""Baseline files: ship the linter strict without blocking on legacy.

A baseline is a committed JSON file of finding fingerprints
(:func:`repro.analysis.base.fingerprint`: rule + path + stripped source
line, deliberately line-number-free so edits elsewhere in a file do not
churn it).  The CLI subtracts baselined findings before gating, so a
newly added rule can land with its legacy findings recorded — CI stays
green — while every *new* violation still fails.  The workflow:

1. ``python -m repro.analysis --write-baseline analysis-baseline.json``
   records today's findings.
2. Commit the baseline; CI runs with ``--baseline``.
3. Burn the baseline down; this repo's is empty and must stay so.

Duplicate findings (same rule, file and source text on two lines) are
baselined by *count*: the file stores how many occurrences are
tolerated, so adding one more of an already-baselined violation still
fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import Finding, fingerprint

BASELINE_FORMAT = 1


class BaselineError(ValueError):
    """A baseline file is unreadable or structurally invalid."""


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    counts = Counter(fingerprint(f) for f in findings)
    payload = {
        "format": BASELINE_FORMAT,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, int]:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") != BASELINE_FORMAT
        or not isinstance(payload.get("findings"), dict)
    ):
        raise BaselineError(
            f"baseline {path} is not a format-{BASELINE_FORMAT} "
            f"analysis baseline"
        )
    findings = payload["findings"]
    for key, count in findings.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise BaselineError(
                f"baseline {path}: malformed entry {key!r}: {count!r}"
            )
    return dict(findings)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Each baseline entry absorbs up to its recorded count of matching
    findings; everything beyond that — more duplicates than baselined,
    or a fingerprint the baseline has never seen — stays live.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = fingerprint(finding)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed

"""Determinism pass: sources of run-to-run variation in library code.

The whole execution stack rests on one contract: results are
bit-identical for any worker count, task order, host, and hash seed
(``PYTHONHASHSEED`` is randomized per interpreter!).  These rules flag
the constructs that silently break it:

* **D101** — unseeded randomness: bare ``random.*`` module calls,
  ``np.random.default_rng()`` with no seed, and the legacy global numpy
  RNG (``np.random.rand`` et al.).  Every RNG in this codebase must be
  an explicitly seeded ``Generator`` threaded through parameters.
* **D102** — wall-clock reads (``time.time()``, ``datetime.now()``):
  fine for *instrumentation*, fatal when they leak into results or
  control flow.  ``time.perf_counter()`` is deliberately not flagged —
  it is the designated instrumentation clock (the engine's measured
  ``seconds``), and scheduling built on it is order-only by contract.
  Genuinely wall-clock-dependent features (``store gc --max-age-days``)
  carry an ``# analysis: allow[D102]`` pragma; a module whose whole
  purpose is sanctioned instrumentation (the telemetry layer) declares
  ``# analysis: allow-module[D102]`` once in its header instead.
* **D103** — iterating a freshly built ``set``/``frozenset`` (or a set
  literal/comprehension), including via ``list()``/``tuple()``/
  ``enumerate()``: the order is hash-seed-dependent, so anything built
  from it is too.  ``sorted(set(...))`` is the fix and is not flagged.
* **D104** — iterating a value *annotated* as a set (directly or
  through a ``Dict[..., Set[...]]`` lookup) where the loop body builds
  ordered output (appends, yields, subscript stores) or the iteration
  is a list/dict comprehension.  Membership tests over sets stay free.
* **D105** — ``assert`` statements: stripped under ``python -O``, so an
  invariant guarded by one silently stops being checked the day someone
  runs optimized.  Library invariants must raise explicitly.
* **D106** — scenario sampling without an explicit ``seed=``:
  :mod:`repro.scenarios` entry points (``ScenarioGenerator``,
  ``generate_scenarios``) derive every fleet from their seed, and a
  dispatch coordinator and its workers must derive the *same* fleet
  independently.  The parameter is keyword-only today; this rule keeps
  call sites explicit even if a default ever creeps in.
* **D107** — ``LinearProgram()`` constructed inside a loop whose body
  also calls ``.solve()``: every iteration pays full model assembly for
  a structure that usually repeats.  Compile once and mutate the
  :class:`~repro.lp.model.CompiledLP` payload in place (or reuse a
  cached builder); a deliberate per-iteration rebuild carries
  ``# analysis: allow[D107]``.  WARNING severity — a perf contract,
  not a correctness one.
* **D108** — dense all-pairs materialization:
  ``all_pairs_shortest_paths(...)`` / ``node_pairs(...)`` calls build a
  quadratic structure — 10^8 entries on the ingest-scale (10k+ node)
  graphs of :mod:`repro.net.ingest`.  Prefer per-source
  ``shortest_path_delays`` sweeps, locality-pruned KSP
  (:class:`repro.net.index.LocalityPruner`) or region aggregation
  (:mod:`repro.tm.regions`); a deliberately zoo-scale call site carries
  ``# analysis: allow[D108]``.  WARNING severity — a scalability
  contract, like D107.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.base import (
    AnnotationScope,
    Finding,
    ModuleSource,
    Pass,
    Severity,
    call_name,
    enclosing_function,
    is_set_annotation,
)

#: ``random`` module functions whose bare (module-global) use is unseeded.
RANDOM_GLOBALS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "seed", "getrandbits", "randbytes",
    }
)

#: Legacy numpy global-RNG entry points (``np.random.<fn>``).
NUMPY_LEGACY = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "normal",
        "uniform", "poisson", "exponential", "standard_normal", "bytes",
    }
)

_ORDERING_WRAPPERS = frozenset({"list", "tuple", "enumerate"})

#: Scenario-fleet sampling entry points that must be explicitly seeded.
SCENARIO_SAMPLERS = frozenset({"ScenarioGenerator", "generate_scenarios"})

#: Calls that materialize the quadratic node-pair space (rule D108).
DENSE_PAIR_MATERIALIZERS = frozenset(
    {"all_pairs_shortest_paths", "node_pairs"}
)


def _import_aliases(tree: ast.Module, target: str) -> Set[str]:
    """Local names bound to ``import target`` (e.g. numpy -> {np})."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == target or item.name.startswith(target + "."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return aliases


def _is_set_expr(node: ast.expr) -> bool:
    """A freshly constructed set: literal, comprehension, or set() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


def _body_builds_ordered_output(body: list) -> bool:
    """Whether loop statements append/yield/store into ordered containers."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "append", "extend", "insert", "setdefault", "write",
                ):
                    return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        return True
    return False


class DeterminismPass(Pass):
    name = "determinism"
    rules = {
        "D101": "unseeded random number generator",
        "D102": "wall-clock read outside the instrumentation allowlist",
        "D103": "iteration over a freshly built set/frozenset",
        "D104": "iteration over a set-annotated value feeding ordered output",
        "D105": "assert statement in library code (stripped under -O)",
        "D106": "scenario sampling without an explicit seed",
        "D107": "LinearProgram rebuilt and solved every loop iteration",
        "D108": "dense all-pairs materialization on a potentially "
                "ingest-scale graph",
    }

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        random_aliases = _import_aliases(module.tree, "random")
        numpy_aliases = _import_aliases(module.tree, "numpy")
        time_aliases = _import_aliases(module.tree, "time")
        datetime_aliases = _import_aliases(module.tree, "datetime")
        scopes: Dict[Optional[ast.AST], AnnotationScope] = {}
        rebuilt_lps: Set[tuple] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, random_aliases, numpy_aliases,
                    time_aliases, datetime_aliases,
                )
            elif isinstance(node, ast.Assert):
                finding = module.finding(
                    "D105",
                    Severity.ERROR,
                    node,
                    "assert is stripped under `python -O`; raise an "
                    "explicit exception for library invariants",
                )
                if finding:
                    yield finding
            elif isinstance(node, ast.For):
                yield from self._check_for(module, node, scopes)
                yield from self._check_loop_rebuild(module, node, rebuilt_lps)
            elif isinstance(node, ast.While):
                yield from self._check_loop_rebuild(module, node, rebuilt_lps)
            elif isinstance(
                node, (ast.ListComp, ast.DictComp, ast.GeneratorExp, ast.SetComp)
            ):
                yield from self._check_comprehension(module, node, scopes)

    # ------------------------------------------------------------------
    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        random_aliases: Set[str],
        numpy_aliases: Set[str],
        time_aliases: Set[str],
        datetime_aliases: Set[str],
    ) -> Iterator[Finding]:
        name = call_name(node)
        if name is None:
            return
        parts = name.split(".")
        root = parts[0]

        # D101: bare `random.<fn>(...)` / zero-arg `random.Random()`
        if root in random_aliases and len(parts) == 2:
            if parts[1] in RANDOM_GLOBALS or (
                parts[1] in ("Random", "SystemRandom")
                and not node.args
                and not node.keywords
            ):
                finding = module.finding(
                    "D101", Severity.ERROR, node,
                    f"`{name}()` uses the unseeded global RNG; thread an "
                    f"explicitly seeded generator through instead",
                )
                if finding:
                    yield finding
        # D101: numpy — `np.random.default_rng()` with no seed, or the
        # legacy global RNG (`np.random.rand` et al.)
        if (
            root in numpy_aliases
            and len(parts) == 3
            and parts[1] == "random"
        ):
            if parts[2] == "default_rng":
                if not node.args and not node.keywords:
                    finding = module.finding(
                        "D101", Severity.ERROR, node,
                        f"`{name}()` without a seed draws OS entropy; "
                        f"pass an explicit seed",
                    )
                    if finding:
                        yield finding
            elif parts[2] in NUMPY_LEGACY:
                finding = module.finding(
                    "D101", Severity.ERROR, node,
                    f"`{name}()` uses numpy's legacy global RNG; use a "
                    f"seeded `np.random.default_rng(seed)` generator",
                )
                if finding:
                    yield finding

        # D102: wall clock
        if (
            root in time_aliases and len(parts) == 2 and parts[1] == "time"
        ) or (
            root in datetime_aliases
            and parts[-1] in ("now", "utcnow", "today")
        ):
            finding = module.finding(
                "D102", Severity.ERROR, node,
                f"`{name}()` reads the wall clock; allow intentional "
                f"instrumentation with `# analysis: allow[D102]`",
            )
            if finding:
                yield finding

        # D106: ScenarioGenerator(...) / generate_scenarios(...) without
        # an explicit seed= keyword.  A `**kwargs` splat may carry the
        # seed invisibly, so it passes.
        if parts[-1] in SCENARIO_SAMPLERS:
            has_seed = any(
                keyword.arg == "seed" or keyword.arg is None
                for keyword in node.keywords
            )
            if not has_seed:
                finding = module.finding(
                    "D106", Severity.ERROR, node,
                    f"`{name}(...)` without `seed=`: scenario fleets must "
                    f"be reproducible across processes; pass an explicit "
                    f"seed",
                )
                if finding:
                    yield finding

        # D108: dense pair materialization — quadratic output that zoo
        # networks tolerate and ingest-scale graphs cannot.
        if parts[-1] in DENSE_PAIR_MATERIALIZERS:
            finding = module.finding(
                "D108", Severity.WARNING, node,
                f"`{name}(...)` materializes every node pair (10^8 at "
                f"ingest scale); prefer per-source shortest_path_delays "
                f"sweeps, locality-pruned KSP or region aggregation, or "
                f"mark a deliberate zoo-scale site with "
                f"`# analysis: allow[D108]`",
            )
            if finding:
                yield finding

        # D103 via wrappers: list(set(...)), enumerate(set(...)), ...
        if name in _ORDERING_WRAPPERS and node.args:
            if _is_set_expr(node.args[0]):
                finding = module.finding(
                    "D103", Severity.ERROR, node,
                    f"`{name}()` over a set materializes hash-seed "
                    f"order; wrap in `sorted(...)`",
                )
                if finding:
                    yield finding

    # ------------------------------------------------------------------
    def _scope_for(
        self,
        module: ModuleSource,
        node: ast.AST,
        scopes: Dict[Optional[ast.AST], AnnotationScope],
    ) -> AnnotationScope:
        func = enclosing_function(module, node)
        if func not in scopes:
            scopes[func] = AnnotationScope.of(
                func if func is not None else module.tree
            )
        return scopes[func]

    def _check_for(
        self,
        module: ModuleSource,
        node: ast.For,
        scopes: Dict[Optional[ast.AST], AnnotationScope],
    ) -> Iterator[Finding]:
        if _is_set_expr(node.iter):
            finding = module.finding(
                "D103", Severity.ERROR, node.iter,
                "iterating a freshly built set visits elements in "
                "hash-seed order; iterate `sorted(...)` instead",
            )
            if finding:
                yield finding
            return
        scope = self._scope_for(module, node, scopes)
        if is_set_annotation(scope.annotation_of(node.iter)):
            if _body_builds_ordered_output(node.body):
                finding = module.finding(
                    "D104", Severity.ERROR, node.iter,
                    "loop over a set-annotated value builds ordered "
                    "output; traverse `sorted(...)` or keep an "
                    "insertion-ordered structure",
                )
                if finding:
                    yield finding

    def _check_loop_rebuild(
        self,
        module: ModuleSource,
        node: ast.stmt,
        reported: Set[tuple],
    ) -> Iterator[Finding]:
        """D107: ``LinearProgram()`` built and ``.solve()``d per iteration.

        Nested loops walk the same statements more than once; ``reported``
        dedups constructor sites by position so each fires at most once.
        """
        constructors = []
        has_solve = False
        body: list = list(node.body) + list(node.orelse)  # type: ignore[attr-defined]
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                name = call_name(sub)
                if name is not None and name.split(".")[-1] == "LinearProgram":
                    constructors.append(sub)
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "solve"
                ):
                    has_solve = True
        if not has_solve:
            return
        for ctor in constructors:
            key = (ctor.lineno, ctor.col_offset)
            if key in reported:
                continue
            reported.add(key)
            finding = module.finding(
                "D107", Severity.WARNING, ctor,
                "`LinearProgram()` rebuilt every iteration of a loop that "
                "also solves it; compile once and mutate the CompiledLP "
                "payload (`# analysis: allow[D107]` if the rebuild is "
                "deliberate)",
            )
            if finding:
                yield finding

    def _check_comprehension(
        self,
        module: ModuleSource,
        node: ast.expr,
        scopes: Dict[Optional[ast.AST], AnnotationScope],
    ) -> Iterator[Finding]:
        # Set comprehensions and bare generators produce unordered (or
        # consumer-judged) values; only list/dict outputs bake the
        # iteration order into the result.
        if not isinstance(node, (ast.ListComp, ast.DictComp)):
            return
        for generator in node.generators:  # type: ignore[attr-defined]
            if _is_set_expr(generator.iter):
                finding = module.finding(
                    "D103", Severity.ERROR, generator.iter,
                    "comprehension over a freshly built set visits "
                    "elements in hash-seed order; iterate "
                    "`sorted(...)` instead",
                )
                if finding:
                    yield finding
            else:
                scope = self._scope_for(module, node, scopes)
                if is_set_annotation(scope.annotation_of(generator.iter)):
                    finding = module.finding(
                        "D104", Severity.ERROR, generator.iter,
                        "ordered comprehension over a set-annotated "
                        "value; iterate `sorted(...)` instead",
                    )
                    if finding:
                        yield finding

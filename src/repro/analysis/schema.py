"""Schema-drift pass: record contracts three modules must agree on.

The store, the dispatch layer, and the CLI exchange plain dicts — store
records, shard manifests, worker summaries, argparse namespaces.  Each
side spells field names as string literals, so nothing but convention
stops a writer renaming ``seconds`` while a reader still asks for it:
the reader would silently fall back to a default (``.get``) or crash at
the worst possible time (mid-dispatch, ``KeyError``).  These rules
cross-check the two sides statically:

* **C301** — a reader subscripts (or ``.get``\\ s) a record key its
  writer family never writes.  Families are located structurally, not by
  hard-coded paths: any module defining ``_result_to_record`` anchors
  the *store-record* family (its dict-literal keys are the write set;
  variables named ``record``/``header`` are its readers), and any module
  defining ``build_manifest``/``build_plan_manifest`` anchors the
  *manifest* family (readers: ``manifest``/``entry``/``task``/
  ``stream``/``summary``).
* **C302** — a manifest writer emits a ``version`` constant the
  ``load_manifest`` validator does not accept: a freshly written
  manifest would be rejected by the very code that wrote it.
* **C303** — CLI drift: an ``args.<name>`` read in a module that builds
  an ``argparse`` parser, where ``<name>`` is neither an
  ``add_argument`` dest nor assigned onto the namespace — the handler
  would crash with ``AttributeError`` on the first run that reaches it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    Finding,
    ModuleSource,
    Pass,
    Severity,
    string_keys,
)

#: Variable names treated as readers of each record family.
STORE_READER_NAMES = frozenset({"record", "header"})
MANIFEST_READER_NAMES = frozenset(
    {"manifest", "entry", "task", "stream", "summary"}
)


def _module_defines(module: ModuleSource, names: Set[str]) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name in names
        for node in ast.walk(module.tree)
    )


def _dict_literal_keys(module: ModuleSource) -> Set[str]:
    """Every constant string key of every dict literal in the module."""
    keys: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Dict):
            keys.update(string_keys(node))
    return keys


def _constant_reads(
    module: ModuleSource, names: frozenset
) -> List[Tuple[str, ast.AST]]:
    """(key, node) for ``var["key"]`` / ``var.get("key", ...)`` reads."""
    reads: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in names
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and isinstance(node.ctx, ast.Load)
        ):
            reads.append((node.slice.value, node))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in names
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.append((node.args[0].value, node))
    return reads


def _subscript_writes(module: ModuleSource, names: frozenset) -> Set[str]:
    """Keys written via ``var["key"] = ...`` / ``var.setdefault("key", ...)``.

    Dict literals are not the only way a writer populates a record —
    ``list_streams`` adds its timing columns by subscript assignment —
    so the write set must include stored subscripts too.
    """
    written: Set[str] = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in names
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and isinstance(node.ctx, (ast.Store, ast.Del))
        ):
            written.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setdefault"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in names
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            written.add(node.args[0].value)
    return written


def _version_names(node: ast.expr) -> Set[str]:
    """Constant-name identifiers inside an expression (Name or tuple)."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
    return names


class SchemaDriftPass(Pass):
    name = "schema-drift"
    rules = {
        "C301": "reader consumes a record field its writer never writes",
        "C302": "manifest writer emits a version its validator rejects",
        "C303": "args.<dest> read without a matching add_argument dest",
    }

    def check_tree(
        self, modules: Sequence[ModuleSource]
    ) -> Iterator[Finding]:
        store_writers = [
            m for m in modules
            if _module_defines(m, {"_result_to_record"})
        ]
        manifest_writers = [
            m for m in modules
            if _module_defines(m, {"build_manifest", "build_plan_manifest"})
        ]
        yield from self._check_family(
            modules,
            writers=store_writers,
            reader_names=STORE_READER_NAMES,
            family="store record",
        )
        yield from self._check_family(
            modules,
            writers=manifest_writers,
            reader_names=MANIFEST_READER_NAMES,
            family="manifest",
        )
        for writer in manifest_writers:
            yield from self._check_versions(writer)
        for module in modules:
            yield from self._check_argparse(module)

    # ------------------------------------------------------------------
    def _check_family(
        self,
        modules: Sequence[ModuleSource],
        writers: Sequence[ModuleSource],
        reader_names: frozenset,
        family: str,
    ) -> Iterator[Finding]:
        if not writers:
            return
        written: Set[str] = set()
        for writer in writers:
            written |= _dict_literal_keys(writer)
            written |= _subscript_writes(writer, reader_names)
        # Reader scope: the writer modules plus anything that imports
        # one of them (structural, so fixture trees work unchanged).
        writer_mods = {
            writer.rel_path.replace("\\", "/")
            .rsplit("/", 1)[-1]
            .removesuffix(".py")
            for writer in writers
        }
        for module in modules:
            if module not in writers and not self._imports_any(
                module, writer_mods
            ):
                continue
            for key, node in _constant_reads(module, reader_names):
                if key in written:
                    continue
                finding = module.finding(
                    "C301", Severity.ERROR, node,
                    f"{family} reader consumes field {key!r}, which no "
                    f"writer in "
                    f"{', '.join(sorted(w.rel_path for w in writers))} "
                    f"ever writes",
                )
                if finding:
                    yield finding

    @staticmethod
    def _imports_any(module: ModuleSource, module_names: Set[str]) -> bool:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[-1] in module_names:
                    return True
                if any(n.name in module_names for n in node.names):
                    return True
            elif isinstance(node, ast.Import):
                if any(
                    item.name.split(".")[-1] in module_names
                    for item in node.names
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    def _check_versions(self, module: ModuleSource) -> Iterator[Finding]:
        accepted: Optional[Set[str]] = None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "load_manifest":
                for compare in ast.walk(node):
                    if not isinstance(compare, ast.Compare):
                        continue
                    left = compare.left
                    is_version_read = (
                        isinstance(left, ast.Call)
                        and isinstance(left.func, ast.Attribute)
                        and left.func.attr == "get"
                        and left.args
                        and isinstance(left.args[0], ast.Constant)
                        and left.args[0].value == "version"
                    ) or (
                        isinstance(left, ast.Subscript)
                        and isinstance(left.slice, ast.Constant)
                        and left.slice.value == "version"
                    )
                    if is_version_read and compare.comparators:
                        accepted = _version_names(compare.comparators[0])
        if accepted is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if not (
                    isinstance(key, ast.Constant) and key.value == "version"
                ):
                    continue
                names = _version_names(value)
                if names and not names & accepted:
                    finding = module.finding(
                        "C302", Severity.ERROR, value,
                        f"manifest written with version "
                        f"{'/'.join(sorted(names))}, but load_manifest "
                        f"accepts only {'/'.join(sorted(accepted))}",
                    )
                    if finding:
                        yield finding

    # ------------------------------------------------------------------
    def _check_argparse(self, module: ModuleSource) -> Iterator[Finding]:
        dests: Set[str] = set()
        has_parser = False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                has_parser = True
                dest = self._argument_dest(node)
                if dest:
                    dests.add(dest)
        if not has_parser:
            return
        assigned: Set[str] = set()
        used: Dict[str, ast.AST] = {}
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "args"
            ):
                if isinstance(node.ctx, ast.Store):
                    assigned.add(node.attr)
                elif isinstance(node.ctx, ast.Load):
                    used.setdefault(node.attr, node)
        for name in sorted(used):
            if name in dests or name in assigned:
                continue
            finding = module.finding(
                "C303", Severity.ERROR, used[name],
                f"`args.{name}` has no matching add_argument dest and "
                f"is never assigned; the handler would crash with "
                f"AttributeError",
            )
            if finding:
                yield finding

    @staticmethod
    def _argument_dest(node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if (
                keyword.arg == "dest"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                return keyword.value.value
        options = [
            arg.value
            for arg in node.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        ]
        if not options:
            return None
        for option in options:
            if option.startswith("--"):
                return option[2:].replace("-", "_")
        first = options[0]
        if not first.startswith("-"):
            return first.replace("-", "_")
        return first.lstrip("-").replace("-", "_")

"""Static analysis for the repro codebase: ``python -m repro.analysis``.

An AST-based linter with codebase-specific passes enforcing the
invariants every layer of the execution stack (plan → schedule → engine
→ store → dispatch) rests on but runtime tests can only sample:

* :class:`~repro.analysis.determinism.DeterminismPass` (D1xx) —
  unseeded RNGs, wall-clock reads, hash-seed-ordered set iteration
  flowing into results, and ``assert``-guarded invariants that
  ``python -O`` strips.
* :class:`~repro.analysis.spawnsafe.SpawnSafetyPass` (S2xx) — lambdas
  and locally-defined functions reaching pool-executed call sites, plus
  the import-time check that every registered scheme spec survives the
  JSON/pickle round trip shard manifests and spawn pools depend on.
* :class:`~repro.analysis.schema.SchemaDriftPass` (C3xx) — store
  record / shard manifest fields cross-checked between their writers
  and readers, manifest version constants against the validator, and
  ``args.<dest>`` reads against ``add_argument`` dests.

:func:`analyze_paths` is the library entry point; the CLI in
:mod:`repro.analysis.__main__` adds text/JSON output, severity gating
and the committed-baseline workflow (:mod:`repro.analysis.baseline`).
Intentional violations are allowlisted in source with
``# analysis: allow[RULE]``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.base import (
    Finding,
    ModuleSource,
    Pass,
    Severity,
    fingerprint,
)
from repro.analysis.determinism import DeterminismPass
from repro.analysis.schema import SchemaDriftPass
from repro.analysis.spawnsafe import SpawnSafetyPass

__all__ = [
    "Finding",
    "ModuleSource",
    "Pass",
    "Severity",
    "all_passes",
    "analyze_paths",
    "collect_modules",
    "fingerprint",
]


def all_passes() -> List[Pass]:
    """The default pass set, in reporting order."""
    return [DeterminismPass(), SpawnSafetyPass(), SchemaDriftPass()]


def collect_modules(
    paths: Sequence[str], root: Optional[str] = None
) -> Tuple[List[ModuleSource], List[Finding]]:
    """Parse every ``.py`` file under ``paths``.

    Returns the parsed modules plus parse *failures* as findings (rule
    ``E001``) — a file the analyzer cannot parse cannot be vouched for,
    so it must fail the gate rather than vanish from it.  ``root``
    anchors the relative paths findings render (defaults to the current
    directory).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    modules: List[ModuleSource] = []
    failures: List[Finding] = []
    for file_path in files:
        try:
            rel = os.path.relpath(file_path, root_path)
        except ValueError:  # pragma: no cover - cross-drive on Windows
            rel = os.fspath(file_path)
        try:
            text = file_path.read_text(encoding="utf-8")
            modules.append(
                ModuleSource(os.fspath(file_path), text, rel_path=rel)
            )
        except (OSError, SyntaxError, ValueError) as exc:
            failures.append(
                Finding(
                    rule="E001",
                    severity=Severity.ERROR,
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    message=f"cannot parse: {exc}",
                    context="parse-failure",
                )
            )
    return modules, failures


def analyze_paths(
    paths: Sequence[str],
    passes: Optional[Iterable[Pass]] = None,
    root: Optional[str] = None,
) -> List[Finding]:
    """Run the given passes (default: all) over the paths' ``.py`` files.

    Findings come back sorted by (path, line, rule) so output — and the
    baseline built from it — is stable across filesystems and runs.
    """
    modules, findings = collect_modules(paths, root=root)
    for analyzer_pass in passes if passes is not None else all_passes():
        for module in modules:
            findings.extend(analyzer_pass.check_module(module))
        findings.extend(analyzer_pass.check_tree(modules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def rule_table(passes: Optional[Iterable[Pass]] = None) -> Dict[str, str]:
    """rule id -> description, across the given (default: all) passes."""
    table: Dict[str, str] = {"E001": "source file fails to parse"}
    for analyzer_pass in passes if passes is not None else all_passes():
        table.update(analyzer_pass.rules)
    return table

"""Spawn-safety pass: what must pickle across a process/host boundary.

The engine prefers ``fork`` pools but falls back to ``spawn`` (and
dispatch always crosses a *host* boundary), so every factory that
reaches a pool-executed call site must survive pickling under the spawn
start method — which lambdas, closures over locals, and functions
defined inside other functions never do.  Registry
:class:`~repro.experiments.spec.SchemeSpec` objects are the sanctioned
vehicle; these rules catch the constructs that silently reintroduce
fork-only (or single-host-only) behavior:

* **S201** — a ``lambda`` passed directly into a pool boundary call
  (``run_plan``/``stream_plan``/``execute_plan``/``evaluate_scheme``/
  executor ``submit``/``map`` — or ``plan.add(...)``, the stream
  registration every engine pass consumes).
* **S202** — a locally-defined function (a ``def`` nested inside
  another function) passed by name into the same boundary calls.
* **S203** — a registered scheme spec that does not survive the JSON +
  pickle round trip.  This is an *import-time* registry check, not an
  AST rule: for every name in the scheme registry it builds
  ``SchemeSpec(name)``, round-trips it through ``to_jsonable`` /
  ``from_jsonable`` / ``json.dumps`` / ``pickle``, and flags any
  disagreement — exactly what a shard manifest or spawn pool would hit
  at dispatch time.

Closures remain *supported* by the engine (fork-only, documented); the
pass is severity-error anyway because nothing in this codebase needs
them at a pool boundary anymore — an allowlisted pragma
(``# analysis: allow[S201]``) marks the deliberate exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set

from repro.analysis.base import (
    Finding,
    ModuleSource,
    Pass,
    Severity,
)

#: Call names whose arguments end up on a process pool.  Plain names
#: match both ``run_plan(...)`` and ``engine.run_plan(...)``.
BOUNDARY_NAMES = frozenset(
    {
        "run_plan", "stream_plan", "execute_plan", "evaluate_scheme",
        "submit", "map_async", "apply_async", "imap", "imap_unordered",
    }
)

#: Receiver names whose ``.add`` registers a plan stream (the factory
#: argument later crosses the pool boundary).
PLAN_RECEIVERS = frozenset({"plan", "eval_plan"})


def _boundary_call(node: ast.Call) -> str:
    """The boundary a call reaches, or '' if it is not one."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in BOUNDARY_NAMES:
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in BOUNDARY_NAMES:
            return func.attr
        if (
            func.attr == "add"
            and isinstance(func.value, ast.Name)
            and func.value.id in PLAN_RECEIVERS
        ):
            return f"{func.value.id}.add"
    return ""


class SpawnSafetyPass(Pass):
    name = "spawn-safety"
    rules = {
        "S201": "lambda passed into a pool-executed call site",
        "S202": "locally-defined function passed into a pool-executed "
                "call site",
        "S203": "registered scheme spec fails the JSON/pickle round trip",
    }

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        # Map of function node -> names of defs nested directly inside it
        # (those can never pickle under spawn).
        local_defs: Set[str] = set()
        for outer in ast.walk(module.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(outer):
                if stmt is outer:
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local_defs.add(stmt.name)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            boundary = _boundary_call(node)
            if not boundary:
                continue
            arguments: List[ast.expr] = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    finding = module.finding(
                        "S201", Severity.ERROR, argument,
                        f"lambda passed to `{boundary}(...)` cannot "
                        f"pickle under the spawn start method; use a "
                        f"registered SchemeSpec",
                    )
                    if finding:
                        yield finding
                elif (
                    isinstance(argument, ast.Name)
                    and argument.id in local_defs
                ):
                    finding = module.finding(
                        "S202", Severity.ERROR, argument,
                        f"locally-defined function "
                        f"`{argument.id}` passed to `{boundary}(...)` "
                        f"cannot pickle under the spawn start method; "
                        f"define it at module level or use a "
                        f"registered SchemeSpec",
                    )
                    if finding:
                        yield finding

    # ------------------------------------------------------------------
    def check_tree(
        self, modules: Sequence[ModuleSource]
    ) -> Iterator[Finding]:
        """S203: every registered spec must round-trip (import-time check).

        Runs only when the analyzed tree contains the spec registry
        module itself, so analyzing fixture snippets or foreign trees
        never drags ``repro.experiments`` imports in.
        """
        spec_module = next(
            (
                m for m in modules
                if m.path.replace("\\", "/").endswith(
                    "repro/experiments/spec.py"
                )
            ),
            None,
        )
        if spec_module is None:
            return
        try:
            import repro.experiments.spec as spec_registry
            from repro.experiments.spec import (
                SchemeSpec,
                registered_schemes,
            )
        except Exception as exc:  # pragma: no cover - import environment
            yield Finding(
                rule="S203",
                severity=Severity.ERROR,
                path=spec_module.rel_path,
                line=1,
                message=f"cannot import the scheme registry: {exc}",
                context="registry-import",
            )
            return
        import inspect
        import json
        import pickle

        json_native = (type(None), bool, int, float, str)
        for name in registered_schemes():
            problem = ""
            params = {}
            try:
                # Every builder parameter (beyond the workload item) must
                # default to a JSON-native value: a default a manifest
                # cannot express means dispatch and spawn pools resolve
                # the scheme differently than an in-process run would.
                builder = spec_registry._REGISTRY[name]
                signature = inspect.signature(builder)
                for parameter in list(signature.parameters.values())[1:]:
                    default = parameter.default
                    if default is inspect.Parameter.empty:
                        continue
                    if not isinstance(default, json_native):
                        problem = (
                            f"builder parameter {parameter.name!r} "
                            f"defaults to non-JSON-native "
                            f"{type(default).__name__}"
                        )
                        break
                    params[parameter.name] = default
            except Exception as exc:
                problem = (
                    f"builder signature inspection raises "
                    f"{type(exc).__name__}: {exc}"
                )
            if not problem:
                spec = SchemeSpec(name, params)
                try:
                    wire = json.loads(json.dumps(spec.to_jsonable()))
                    if SchemeSpec.from_jsonable(wire) != spec:
                        problem = "JSON round trip changes the spec"
                    elif pickle.loads(pickle.dumps(spec)) != spec:
                        problem = "pickle round trip changes the spec"
                except Exception as exc:
                    problem = (
                        f"round trip raises {type(exc).__name__}: {exc}"
                    )
            if problem:
                yield Finding(
                    rule="S203",
                    severity=Severity.ERROR,
                    path=spec_module.rel_path,
                    line=1,
                    message=f"registered scheme {name!r}: {problem}",
                    context=f"registry:{name}",
                )

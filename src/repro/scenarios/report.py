"""The robustness report: degradation distributions across a fleet.

Following the survivability literature (see PAPERS.md), robustness is
reported as a *distribution* over scenarios, not a mean: for each scheme
the report gives quantiles of per-variant degradation relative to the
unperturbed baseline (variant 0 of every fleet):

* ``stretch_ratio`` — variant latency stretch / baseline latency
  stretch (1.0 = no degradation);
* ``congestion_delta`` — variant congested fraction minus baseline
  congested fraction (0.0 = no new congestion).

Quantiles use the deterministic nearest-rank method on sorted values, so
the report is bit-identical however the fleet was executed; the JSON
form is ``json.dumps(..., indent=2, sort_keys=True)`` for byte-stable
diffing across in-process, 1-worker and 2-worker dispatch runs.

The module is dependency-free on purpose: it consumes plain per-variant
metric dicts, so it never imports the engine/store layers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

__all__ = [
    "variant_metrics",
    "robustness_payload",
    "render_text",
    "render_json",
]

ROBUSTNESS_FORMAT = "repro-robustness"
ROBUSTNESS_VERSION = 1

#: Quantiles reported for each degradation distribution.
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


def variant_metrics(outcomes: Sequence[Any]) -> Dict[str, float]:
    """Mean-over-matrices metrics of one evaluated variant.

    ``outcomes`` are :class:`~repro.experiments.runner.SchemeOutcome`
    records (duck-typed); one variant evaluates one scheme over the base
    item's traffic-matrix ensemble.
    """
    n = max(1, len(outcomes))
    return {
        "latency_stretch": sum(o.latency_stretch for o in outcomes) / n,
        "congested_fraction": sum(o.congested_fraction for o in outcomes) / n,
        "max_utilization": sum(o.max_utilization for o in outcomes) / n,
    }


def _nearest_rank(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank quantile on pre-sorted values (deterministic).

    Integer arithmetic (per-mille) keeps the rank free of float
    rounding: rank = ceil(fraction * n), clamped to [1, n].
    """
    if not sorted_values:
        return 0.0
    per_mille = round(fraction * 1000)
    rank = -(-per_mille * len(sorted_values) // 1000)
    rank = min(max(rank, 1), len(sorted_values))
    return sorted_values[rank - 1]


def _distribution(values: List[float]) -> Dict[str, float]:
    ordered = sorted(values)
    stats = {name: _nearest_rank(ordered, q) for name, q in QUANTILES}
    stats["max"] = ordered[-1] if ordered else 0.0
    stats["mean"] = sum(ordered) / len(ordered) if ordered else 0.0
    return stats


def robustness_payload(
    network_name: str,
    variant_labels: Sequence[str],
    per_scheme: Mapping[str, Mapping[int, Mapping[str, float]]],
    skipped: Mapping[str, int],
    kind_counts: Mapping[str, int],
) -> Dict[str, Any]:
    """Assemble the report payload.

    ``per_scheme`` maps scheme name -> variant index -> metric dict (as
    produced by :func:`variant_metrics`); index 0 must be the baseline.
    ``variant_labels`` gives each variant's human label, index-aligned.
    """
    schemes: Dict[str, Any] = {}
    ranking: List[Any] = []
    for scheme in sorted(per_scheme):
        by_variant = per_scheme[scheme]
        if 0 not in by_variant:
            raise ValueError(f"scheme {scheme!r} has no baseline variant")
        baseline = dict(by_variant[0])
        base_stretch = baseline["latency_stretch"]
        ratios: List[float] = []
        deltas: List[float] = []
        worst_index = 0
        worst_ratio = 1.0
        for index in sorted(by_variant):
            if index == 0:
                continue
            metrics = by_variant[index]
            if base_stretch > 0:
                ratio = metrics["latency_stretch"] / base_stretch
            else:
                ratio = 1.0
            delta = (
                metrics["congested_fraction"] - baseline["congested_fraction"]
            )
            ratios.append(ratio)
            deltas.append(delta)
            if ratio > worst_ratio:
                worst_ratio = ratio
                worst_index = index
        stretch = _distribution(ratios)
        congestion = _distribution(deltas)
        schemes[scheme] = {
            "baseline": baseline,
            "n_variants": len(ratios),
            "stretch_ratio": stretch,
            "congestion_delta": congestion,
            "worst_variant": {
                "index": worst_index,
                "label": (
                    variant_labels[worst_index]
                    if worst_index < len(variant_labels)
                    else ""
                ),
                "stretch_ratio": worst_ratio,
            },
        }
        ranking.append((stretch["p90"], stretch["max"], scheme))
    ranking.sort()
    return {
        "format": ROBUSTNESS_FORMAT,
        "version": ROBUSTNESS_VERSION,
        "network": network_name,
        "n_variants": len(variant_labels),
        "n_infeasible": sum(skipped.values()),
        "skipped": {kind: skipped[kind] for kind in sorted(skipped)},
        "kinds": {kind: kind_counts[kind] for kind in sorted(kind_counts)},
        "schemes": schemes,
        "ranking": [scheme for _, _, scheme in ranking],
    }


def render_json(payload: Mapping[str, Any]) -> str:
    """Byte-stable JSON rendering of the report."""
    return json.dumps(payload, indent=2, sort_keys=True)


def render_text(payload: Mapping[str, Any]) -> str:
    """Human-readable rendering (same data, same determinism)."""
    lines: List[str] = []
    lines.append(
        f"robustness report: {payload['network']} "
        f"({payload['n_variants']} variant(s), "
        f"{payload['n_infeasible']} infeasible skipped)"
    )
    kinds = payload["kinds"]
    if kinds:
        lines.append(
            "variants: "
            + ", ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
        )
    header_cells = (
        "scheme", "p50", "p90", "p99", "max", "worst variant"
    )
    lines.append(
        f"{header_cells[0]:<12} {header_cells[1]:>8} {header_cells[2]:>8} "
        f"{header_cells[3]:>8} {header_cells[4]:>8}  {header_cells[5]}"
    )
    for scheme in payload["ranking"]:
        detail = payload["schemes"][scheme]
        stretch = detail["stretch_ratio"]
        worst = detail["worst_variant"]
        lines.append(
            f"{scheme:<12} {stretch['p50']:>8.4f} {stretch['p90']:>8.4f} "
            f"{stretch['p99']:>8.4f} {stretch['max']:>8.4f}  "
            f"{worst['label']}"
        )
    if payload["ranking"]:
        best = payload["ranking"][0]
        lines.append(
            f"least degradation (p90 stretch ratio): {best}"
        )
    return "\n".join(lines)

"""A lazy, store-compatible workload over a scenario fleet.

:class:`ScenarioWorkload` duck-types
:class:`~repro.experiments.workloads.ZooWorkload` — it exposes
``networks`` / ``locality`` / ``growth_factor`` / ``seed`` — but its
``networks`` sequence *materializes variants on demand*: index ``i``
applies ``specs[i]`` to the base item when (and only when) the engine
asks for it, with a small LRU so a window of in-flight tasks shares
work.  A 10^5-variant fleet therefore costs one base item plus the
in-flight window, never 10^5 Network copies.

Three hooks make the rest of the spine treat fleets as first-class
workloads with no special cases:

* :meth:`content_signature` — consumed by
  :func:`repro.experiments.store.workload_signature` so store/dedup/
  resume identity never iterates the fleet;
* :meth:`cost_basis` — consumed by the cost model to predict a
  variant's seconds from the *base* network's learned timings;
* :meth:`to_manifest_jsonable` / :meth:`from_manifest_jsonable` — the
  compact fleet description shipped in v2 dispatch manifests (base item
  + specs, not materialized variants).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.store import STORE_FORMAT
from repro.experiments.workloads import NetworkWorkload
from repro.net.io import from_json as network_from_json
from repro.net.io import to_json as network_to_json
from repro.scenarios.spec import ScenarioSpec
from repro.tm.matrix import from_json as tm_from_json
from repro.tm.matrix import to_json as tm_to_json

__all__ = ["ScenarioWorkload"]

#: Variants kept materialized at once; covers the engine's in-flight
#: window (2 x workers) at typical worker counts.
VARIANT_CACHE_SIZE = 32


class _LazyVariants:
    """Sequence view applying specs on demand (bounded LRU)."""

    def __init__(self, base: NetworkWorkload, specs: List[ScenarioSpec]):
        self._base = base
        self._specs = specs
        self._cache: "OrderedDict[int, NetworkWorkload]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._specs)

    def __getitem__(self, index: int) -> NetworkWorkload:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self._specs)
        if not 0 <= index < len(self._specs):
            raise IndexError(index)
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        item = self._specs[index].apply(self._base)
        self._cache[index] = item
        while len(self._cache) > VARIANT_CACHE_SIZE:
            self._cache.popitem(last=False)
        return item

    def __iter__(self):
        for index in range(len(self._specs)):
            yield self[index]


class ScenarioWorkload:
    """One base item fanned out across a scenario fleet.

    Variant 0 is conventionally the unperturbed baseline (the generator
    guarantees it), so per-scheme degradation is computable within one
    result stream.
    """

    def __init__(
        self,
        base: NetworkWorkload,
        specs: List[ScenarioSpec],
        *,
        locality: float = 1.0,
        growth_factor: float = 1.3,
        seed: Optional[int] = None,
    ) -> None:
        if not specs:
            raise ValueError("a scenario workload needs at least one spec")
        self.base = base
        self.specs = list(specs)
        self.networks = _LazyVariants(base, self.specs)
        self.locality = locality
        self.growth_factor = growth_factor
        self.seed = seed

    # ------------------------------------------------------------------
    # Store identity (see store.workload_signature's fast path)
    # ------------------------------------------------------------------
    def content_signature(self, matrices_per_network: Optional[int]) -> str:
        digest = hashlib.sha256()
        digest.update(f"repro-store|{STORE_FORMAT}".encode())
        digest.update(
            f"|W|{self.locality!r}|{self.growth_factor!r}"
            f"|{self.seed!r}|{matrices_per_network!r}".encode()
        )
        digest.update(b"|SCN|")
        digest.update(network_to_json(self.base.network).encode())
        digest.update(f"|{self.base.llpd!r}".encode())
        matrices = self.base.matrices
        if matrices_per_network is not None:
            matrices = matrices[:matrices_per_network]
        for tm in matrices:
            digest.update(b"|T|")
            digest.update(tm_to_json(tm).encode())
        for spec in self.specs:
            digest.update(b"|S|")
            digest.update(spec.signature().encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Cost prediction (see cost.CostModel.predict's fast path)
    # ------------------------------------------------------------------
    def cost_basis(self, index: int) -> Tuple[NetworkWorkload, float]:
        """(base item, relative factor) for predicting variant ``index``."""
        return self.base, self.specs[index].cost_factor()

    # ------------------------------------------------------------------
    # Dispatch manifests (compact: base + specs, never variants)
    # ------------------------------------------------------------------
    def to_manifest_jsonable(self) -> Dict[str, Any]:
        return {
            "llpd": self.base.llpd,
            "network": network_to_json(self.base.network),
            "matrices": [tm_to_json(tm) for tm in self.base.matrices],
            "locality": self.locality,
            "growth_factor": self.growth_factor,
            "seed": self.seed,
            "specs": [spec.to_jsonable() for spec in self.specs],
        }

    @classmethod
    def from_manifest_jsonable(cls, payload: Dict[str, Any]) -> "ScenarioWorkload":
        base = NetworkWorkload(
            network=network_from_json(payload["network"]),
            llpd=float(payload["llpd"]),
            matrices=[tm_from_json(text) for text in payload["matrices"]],
        )
        return cls(
            base=base,
            specs=[
                ScenarioSpec.from_jsonable(entry) for entry in payload["specs"]
            ],
            locality=float(payload["locality"]),
            growth_factor=float(payload["growth_factor"]),
            seed=payload["seed"],
        )

    def __repr__(self) -> str:
        return (
            f"ScenarioWorkload(base={self.base.network.name!r}, "
            f"variants={len(self.specs)})"
        )

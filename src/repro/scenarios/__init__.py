"""Scenario fleets: composable what-if perturbations at 10^5-task scale.

The subsystem answers questions like "which scheme degrades least under
any 2-link failure on this network" by fanning one base workload item
out across a deterministic fleet of perturbed (topology, traffic)
variants and reporting degradation *distributions* per scheme:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the picklable,
  content-hashed perturbation description (failures, flash crowds,
  locality shifts, staged growth; kinds compose);
* :mod:`repro.scenarios.generate` — :class:`ScenarioGenerator`, seeded
  fleet enumeration/sampling with deterministic infeasible-variant
  skip-and-count;
* :mod:`repro.scenarios.workload` — :class:`ScenarioWorkload`, the lazy
  ZooWorkload stand-in that materializes variants on demand and plugs
  into the store/cost/dispatch layers via small hooks;
* :mod:`repro.scenarios.report` — the robustness report (per-scheme
  degradation quantiles vs the unperturbed baseline), text or
  byte-stable JSON.

The CLI entry point is ``python -m repro.experiments scenarios``.
"""

from repro.scenarios.generate import (
    ScenarioGenerator,
    ScenarioSet,
    generate_scenarios,
)
from repro.scenarios.spec import BASELINE, ScenarioInfeasible, ScenarioSpec
from repro.scenarios.workload import ScenarioWorkload

__all__ = [
    "BASELINE",
    "ScenarioGenerator",
    "ScenarioInfeasible",
    "ScenarioSet",
    "ScenarioSpec",
    "ScenarioWorkload",
    "generate_scenarios",
]

"""Composable perturbation specs.

A :class:`ScenarioSpec` is a small, frozen, picklable description of how
to perturb one base (network, traffic-matrix ensemble) item: which
physical links or nodes fail, which demand pairs surge and by how much,
what locality the demand is reshaped to, and which staged-growth links
are added.  Perturbation kinds compose — a spec may surge a flash crowd
*on top of* a 2-link failure — and :meth:`ScenarioSpec.apply` realizes
the variant as an ordinary
:class:`~repro.experiments.workloads.NetworkWorkload`, so the whole
engine/store/dispatch spine runs unchanged.

Specs are pure data: applying the same spec to the same base item always
yields the same variant, and :meth:`ScenarioSpec.signature` hashes the
canonical JSON form so stores and manifests can identify variants by
content.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.metrics import ApaParameters, llpd
from repro.experiments.workloads import NetworkWorkload
from repro.net.mutate import (
    ScenarioInfeasible,
    ensure_demand_connectivity,
    with_added_link,
    with_removed_duplex_link,
    with_removed_node,
)
from repro.tm import TrafficMatrix, apply_locality

__all__ = ["ScenarioSpec", "ScenarioInfeasible", "BASELINE"]

#: Version tag of the :meth:`ScenarioSpec.to_jsonable` layout; part of
#: every spec signature, so a layout change invalidates stored variants.
SPEC_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One deterministic perturbation of a base workload item.

    All fields are optional and compose; the empty spec is the
    unperturbed baseline.  Tuples keep the spec hashable and picklable.
    """

    #: Physical (duplex) links to fail, as ordered ``(a, b)`` endpoint
    #: pairs matching the base topology's duplex pairs.
    failed_links: Tuple[Tuple[str, str], ...] = ()
    #: Nodes to fail; demands touching a failed node are dropped.
    failed_nodes: Tuple[str, ...] = ()
    #: Demand pairs hit by a flash crowd, scaled by :attr:`surge_factor`.
    surge_pairs: Tuple[Tuple[str, str], ...] = ()
    surge_factor: float = 1.0
    #: Reshape demand to this locality fraction (``None`` = leave as-is).
    locality: Optional[float] = None
    #: Staged-growth links to add (endpoint pairs; zoo-class capacities).
    growth_links: Tuple[Tuple[str, str], ...] = ()

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """A deterministic label of the perturbation kinds composed."""
        kinds: List[str] = []
        if self.growth_links:
            kinds.append("growth")
        if self.failed_links:
            kinds.append("link_failure")
        if self.failed_nodes:
            kinds.append("node_failure")
        if self.surge_pairs:
            kinds.append("flash_crowd")
        if self.locality is not None:
            kinds.append("locality_shift")
        return "+".join(kinds) if kinds else "baseline"

    def label(self) -> str:
        """A short human-readable variant label (used in network names)."""
        parts: List[str] = []
        if self.growth_links:
            parts.append("grow[%s]" % ",".join(
                f"{a}--{b}" for a, b in self.growth_links
            ))
        if self.failed_links:
            parts.append("fail[%s]" % ",".join(
                f"{a}--{b}" for a, b in self.failed_links
            ))
        if self.failed_nodes:
            parts.append("down[%s]" % ",".join(self.failed_nodes))
        if self.surge_pairs:
            parts.append(
                f"surge[x{self.surge_factor:g}:{len(self.surge_pairs)}p]"
            )
        if self.locality is not None:
            parts.append(f"loc[{self.locality:g}]")
        return "+".join(parts) if parts else "baseline"

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "format": "repro-scenario",
            "version": SPEC_FORMAT_VERSION,
            "failed_links": [list(pair) for pair in self.failed_links],
            "failed_nodes": list(self.failed_nodes),
            "surge_pairs": [list(pair) for pair in self.surge_pairs],
            "surge_factor": self.surge_factor,
            "locality": self.locality,
            "growth_links": [list(pair) for pair in self.growth_links],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        if payload.get("format") != "repro-scenario":
            raise ValueError("not a repro scenario document")
        if payload.get("version") != SPEC_FORMAT_VERSION:
            raise ValueError(
                f"unsupported scenario version {payload.get('version')!r}"
            )
        return cls(
            failed_links=tuple(
                (a, b) for a, b in payload["failed_links"]
            ),
            failed_nodes=tuple(payload["failed_nodes"]),
            surge_pairs=tuple((a, b) for a, b in payload["surge_pairs"]),
            surge_factor=float(payload["surge_factor"]),
            locality=payload["locality"],
            growth_links=tuple((a, b) for a, b in payload["growth_links"]),
        )

    def signature(self) -> str:
        """Content hash of the canonical JSON form."""
        canonical = json.dumps(self.to_jsonable(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def compose(self, other: "ScenarioSpec") -> "ScenarioSpec":
        """Stack another perturbation on top of this one.

        Tuple fields concatenate; scalar fields (surge factor, locality)
        are taken from ``other`` when it sets them, else kept.
        """
        return ScenarioSpec(
            failed_links=self.failed_links + other.failed_links,
            failed_nodes=self.failed_nodes + other.failed_nodes,
            surge_pairs=self.surge_pairs + other.surge_pairs,
            surge_factor=(
                other.surge_factor if other.surge_pairs else self.surge_factor
            ),
            locality=other.locality if other.locality is not None else self.locality,
            growth_links=self.growth_links + other.growth_links,
        )

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def cost_factor(self) -> float:
        """Predicted cost of the variant relative to the base item.

        Failures and surges reuse the base topology's shape (same LP
        size), so they predict at the base cost.  A locality shift adds
        one LP redistribution per matrix; growth adds links, growing the
        path/column count roughly linearly.
        """
        factor = 1.0
        if self.locality is not None:
            factor *= 1.2
        if self.growth_links:
            factor *= 1.0 + 0.05 * len(self.growth_links)
        return factor

    # ------------------------------------------------------------------
    # Realization
    # ------------------------------------------------------------------
    def apply(self, base: NetworkWorkload) -> NetworkWorkload:
        """Realize this spec against a base item.

        Order of operations: growth first (the what-if topology), then
        failures on the grown topology, then demand perturbations (node
        -failure demand drops, flash-crowd surge, locality reshape).
        Raises :class:`ScenarioInfeasible` when the perturbed topology
        cannot carry the perturbed demand at all (severed pair).

        LLPD is recomputed only for growth variants (growth *targets*
        LLPD); failure/surge variants keep the base item's LLPD — the
        robustness report compares schemes on one topology family, where
        re-deriving the descriptive metric per variant would only slow
        the fleet down.
        """
        if self.kind == "baseline":
            return base
        network = base.network
        for a, b in self.growth_links:
            network = with_added_link(network, a, b)
        for a, b in self.failed_links:
            network = with_removed_duplex_link(network, a, b)
        for name in self.failed_nodes:
            network = with_removed_node(network, name)

        failed = set(self.failed_nodes)
        matrices: List[TrafficMatrix] = []
        for tm in base.matrices:
            if failed:
                tm = TrafficMatrix(
                    {
                        pair: demand
                        for pair, demand in tm.items()
                        if pair[0] not in failed and pair[1] not in failed
                    },
                    flow_counts={
                        pair: tm.flows(*pair)
                        for pair, _ in tm.items()
                        if pair[0] not in failed and pair[1] not in failed
                    },
                )
            if self.surge_pairs:
                tm = tm.scaled(self.surge_factor, pairs=self.surge_pairs)
            matrices.append(tm)

        # Feasibility before any LP touches the variant.  The locality
        # reshape needs a path for *every* matrix pair (zero-demand
        # pairs may receive redistributed volume); otherwise only pairs
        # actually carrying demand must stay connected.
        demand_pairs: List[Tuple[str, str]] = []
        seen_pairs = set()
        for tm in matrices:
            for pair, demand in tm.items():
                if (self.locality is not None or demand > 0) and (
                    pair not in seen_pairs
                ):
                    seen_pairs.add(pair)
                    demand_pairs.append(pair)
        ensure_demand_connectivity(network, demand_pairs)
        if self.locality is not None:
            matrices = [
                apply_locality(network, tm, self.locality) for tm in matrices
            ]

        label = self.label()
        named = network.copy(name=f"{base.network.name}#{label}")
        if self.growth_links:
            value = llpd(named, ApaParameters())
        else:
            value = base.llpd
        return NetworkWorkload(
            network=named, llpd=value, matrices=matrices, scenario=label
        )


#: The unperturbed spec; variant 0 of every fleet.
BASELINE = ScenarioSpec()

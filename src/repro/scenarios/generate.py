"""Deterministic, seeded scenario-fleet generation.

:class:`ScenarioGenerator` turns one base workload item into a fleet of
:class:`~repro.scenarios.spec.ScenarioSpec` variants: exhaustive k-link /
k-node failures while the combination count fits a budget (seeded
distinct sampling beyond it), flash-crowd surges on seeded demand-pair
subsets, locality shifts, and staged topology growth.  Everything is a
pure function of ``(base item, seed, parameters)``:

* candidate sets are sorted before any enumeration or sampling, so the
  fleet is independent of hash seeds and hosts;
* every RNG is an explicitly seeded ``np.random.default_rng`` derived
  from the generator seed plus a per-kind tag, so two processes build
  bit-identical fleets;
* variants whose failures sever a demand pair are *skipped and counted*
  (see :class:`ScenarioSet`), never silently dropped — the counts are
  part of the robustness report.

The feasibility screen here is a cheap adjacency BFS (no Network copies,
no LP); :meth:`ScenarioSpec.apply` re-checks authoritatively when the
variant is realized.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.experiments.workloads import NetworkWorkload
from repro.scenarios.spec import BASELINE, ScenarioSpec

__all__ = ["ScenarioGenerator", "ScenarioSet", "generate_scenarios"]

#: Above this many variants per perturbation kind, exhaustive
#: enumeration gives way to seeded distinct sampling.
DEFAULT_BUDGET = 1000


@dataclass
class ScenarioSet:
    """A generated fleet: ordered specs plus skip accounting."""

    specs: List[ScenarioSpec]
    #: Infeasible variants skipped during generation, by perturbation kind.
    skipped: Dict[str, int] = field(default_factory=dict)

    @property
    def n_infeasible(self) -> int:
        return sum(self.skipped.values())

    def kind_counts(self) -> Dict[str, int]:
        """Generated variants per perturbation kind (deterministic order)."""
        counts: Dict[str, int] = {}
        for spec in self.specs:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return counts


class ScenarioGenerator:
    """Seeded perturbation-fleet builder for one base workload item.

    ``seed`` is required (keyword-only): an unseeded fleet would differ
    between the coordinator and its dispatch workers, which the
    determinism contract forbids (analysis rule D106 flags call sites
    that omit it).
    """

    def __init__(self, base: NetworkWorkload, *, seed: int) -> None:
        self.base = base
        self.seed = int(seed)
        network = base.network
        self._node_order: List[str] = list(network.node_names)
        self._adjacency: Dict[str, List[str]] = {
            name: list(network.successors(name)) for name in self._node_order
        }
        self._duplex: List[Tuple[str, str]] = sorted(network.duplex_pairs())
        pairs: List[Tuple[str, str]] = []
        seen = set()
        for tm in base.matrices:
            for pair, demand in tm.items():
                if demand > 0 and pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
        self._demand_pairs: List[Tuple[str, str]] = pairs

    # ------------------------------------------------------------------
    # Feasibility screen (cheap, Network-copy-free)
    # ------------------------------------------------------------------
    def _component_labels(
        self,
        failed_links: Tuple[Tuple[str, str], ...],
        failed_nodes: Tuple[str, ...],
    ) -> Dict[str, int]:
        removed = {frozenset(pair) for pair in failed_links}
        down = set(failed_nodes)
        labels: Dict[str, int] = {}
        n_components = 0
        for start in self._node_order:
            if start in down or start in labels:
                continue
            labels[start] = n_components
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency[node]:
                    if neighbor in down or neighbor in labels:
                        continue
                    if removed and frozenset((node, neighbor)) in removed:
                        continue
                    labels[neighbor] = n_components
                    queue.append(neighbor)
            n_components += 1
        return labels

    def is_feasible(self, spec: ScenarioSpec) -> bool:
        """Whether the spec's failures leave every live demand pair connected."""
        labels = self._component_labels(spec.failed_links, spec.failed_nodes)
        down = set(spec.failed_nodes)
        for src, dst in self._demand_pairs:
            if src in down or dst in down:
                continue
            if labels[src] != labels[dst]:
                return False
        return True

    # ------------------------------------------------------------------
    # Combination enumeration / sampling
    # ------------------------------------------------------------------
    def _combinations(
        self, items: Sequence, k: int, budget: int, kind_tag: int
    ) -> List[Tuple]:
        """Distinct k-subsets of ``items``: exhaustive if they fit ``budget``,
        else a seeded sample of ``budget`` distinct subsets."""
        if k <= 0 or k > len(items):
            return []
        total = math.comb(len(items), k)
        if total <= budget:
            return list(combinations(items, k))
        rng = np.random.default_rng([self.seed, kind_tag, k])
        chosen = set()
        picked: List[Tuple] = []
        attempts = 0
        max_attempts = budget * 50
        while len(picked) < budget and attempts < max_attempts:
            attempts += 1
            indices = tuple(
                sorted(rng.choice(len(items), size=k, replace=False).tolist())
            )
            if indices in chosen:
                continue
            chosen.add(indices)
            picked.append(tuple(items[i] for i in indices))
        return picked

    # ------------------------------------------------------------------
    # Perturbation kinds
    # ------------------------------------------------------------------
    def link_failures(
        self, k: int, budget: int = DEFAULT_BUDGET
    ) -> Tuple[List[ScenarioSpec], int]:
        """All (or a seeded sample of) k-link failure variants.

        Returns ``(feasible specs, skipped count)``; infeasible combos —
        those severing a demand pair — are screened out deterministically.
        """
        specs: List[ScenarioSpec] = []
        skipped = 0
        for combo in self._combinations(self._duplex, k, budget, kind_tag=101):
            spec = ScenarioSpec(failed_links=tuple(combo))
            if self.is_feasible(spec):
                specs.append(spec)
            else:
                skipped += 1
        return specs, skipped

    def node_failures(
        self, k: int, budget: int = DEFAULT_BUDGET
    ) -> Tuple[List[ScenarioSpec], int]:
        """k-node failure variants; demands touching failed nodes drop."""
        specs: List[ScenarioSpec] = []
        skipped = 0
        names = sorted(self._node_order)
        for combo in self._combinations(names, k, budget, kind_tag=102):
            spec = ScenarioSpec(failed_nodes=tuple(combo))
            down = set(combo)
            live = [
                pair
                for pair in self._demand_pairs
                if pair[0] not in down and pair[1] not in down
            ]
            if not live:
                skipped += 1
                continue
            if self.is_feasible(spec):
                specs.append(spec)
            else:
                skipped += 1
        return specs, skipped

    def flash_crowds(
        self, n: int, factor: float = 5.0, n_pairs: int = 2
    ) -> List[ScenarioSpec]:
        """``n`` seeded flash-crowd variants, each surging ``n_pairs`` demands."""
        if not self._demand_pairs or n <= 0:
            return []
        n_pairs = min(n_pairs, len(self._demand_pairs))
        rng = np.random.default_rng([self.seed, 103])
        specs: List[ScenarioSpec] = []
        seen = set()
        attempts = 0
        while len(specs) < n and attempts < n * 50:
            attempts += 1
            indices = tuple(
                sorted(
                    rng.choice(
                        len(self._demand_pairs), size=n_pairs, replace=False
                    ).tolist()
                )
            )
            if indices in seen:
                continue
            seen.add(indices)
            specs.append(
                ScenarioSpec(
                    surge_pairs=tuple(self._demand_pairs[i] for i in indices),
                    surge_factor=float(factor),
                )
            )
        return specs

    def locality_shifts(
        self, localities: Iterable[float]
    ) -> List[ScenarioSpec]:
        """One regional-shift variant per locality value."""
        return [ScenarioSpec(locality=float(value)) for value in localities]

    def growth(self, stages: int) -> List[ScenarioSpec]:
        """Staged topology growth: stage ``s`` adds the first ``s`` links.

        Candidates come from :func:`repro.net.mutate.candidate_links`
        (geographically-shortest first, seeded tie-break), so the staged
        sequence is nested and deterministic.
        """
        if stages <= 0:
            return []
        from repro.net.mutate import candidate_links

        rng = np.random.default_rng([self.seed, 104])
        candidates = candidate_links(
            self.base.network, max_candidates=stages, rng=rng
        )
        return [
            ScenarioSpec(growth_links=tuple(candidates[:stage]))
            for stage in range(1, len(candidates) + 1)
        ]

    # ------------------------------------------------------------------
    # Fleet assembly
    # ------------------------------------------------------------------
    def fleet(
        self,
        *,
        link_failure_k: int = 0,
        node_failure_k: int = 0,
        surges: int = 0,
        surge_factor: float = 5.0,
        surge_pairs: int = 2,
        localities: Iterable[float] = (),
        growth_stages: int = 0,
        budget: int = DEFAULT_BUDGET,
    ) -> ScenarioSet:
        """Assemble the fleet: baseline first, then each requested kind.

        Variant 0 is always the unperturbed baseline, so per-scheme
        degradation is computable within the stream itself.
        """
        specs: List[ScenarioSpec] = [BASELINE]
        skipped: Dict[str, int] = {}
        if link_failure_k > 0:
            kind_specs, n_skipped = self.link_failures(link_failure_k, budget)
            specs.extend(kind_specs)
            if n_skipped:
                skipped["link_failure"] = n_skipped
        if node_failure_k > 0:
            kind_specs, n_skipped = self.node_failures(node_failure_k, budget)
            specs.extend(kind_specs)
            if n_skipped:
                skipped["node_failure"] = n_skipped
        specs.extend(self.flash_crowds(surges, surge_factor, surge_pairs))
        specs.extend(self.locality_shifts(localities))
        specs.extend(self.growth(growth_stages))
        return ScenarioSet(specs=specs, skipped=skipped)


def generate_scenarios(
    base: NetworkWorkload,
    *,
    seed: int,
    link_failure_k: int = 0,
    node_failure_k: int = 0,
    surges: int = 0,
    surge_factor: float = 5.0,
    surge_pairs: int = 2,
    localities: Iterable[float] = (),
    growth_stages: int = 0,
    budget: int = DEFAULT_BUDGET,
) -> ScenarioSet:
    """One-call fleet generation (see :meth:`ScenarioGenerator.fleet`)."""
    return ScenarioGenerator(base, seed=seed).fleet(
        link_failure_k=link_failure_k,
        node_failure_k=node_failure_k,
        surges=surges,
        surge_factor=surge_factor,
        surge_pairs=surge_pairs,
        localities=localities,
        growth_stages=growth_stages,
        budget=budget,
    )

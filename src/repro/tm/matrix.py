"""The traffic matrix datatype.

A :class:`TrafficMatrix` maps ordered PoP pairs to aggregate demands.  Each
aggregate carries a mean rate (bits/s) and a flow count — the paper's
latency objective weights each aggregate by its number of flows ``n_a``, and
ingress routers are assumed to report both quantities (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

Pair = Tuple[str, str]


@dataclass(frozen=True)
class Aggregate:
    """Traffic between one ordered PoP pair."""

    src: str
    dst: str
    demand_bps: float
    n_flows: int = 1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"aggregate with equal endpoints {self.src!r}")
        if self.demand_bps < 0:
            raise ValueError(f"negative demand for {self.src}->{self.dst}")
        if self.n_flows < 1:
            raise ValueError(f"aggregate {self.src}->{self.dst} needs >= 1 flow")

    @property
    def pair(self) -> Pair:
        return (self.src, self.dst)


# One flow per 5 Mb/s of demand is a reasonable backbone-aggregate figure;
# the exact constant only affects the flow-count weighting, not feasibility.
DEFAULT_BPS_PER_FLOW = 5e6


class TrafficMatrix:
    """Demands for a set of ordered PoP pairs.

    The matrix is immutable in spirit: shaping operations return new
    matrices.  Pairs with zero demand are retained (the locality LP may
    redistribute volume onto them) but are dropped by :meth:`aggregates`.
    """

    def __init__(
        self,
        demands_bps: Mapping[Pair, float],
        flow_counts: Optional[Mapping[Pair, int]] = None,
        bps_per_flow: float = DEFAULT_BPS_PER_FLOW,
    ) -> None:
        self._demands: Dict[Pair, float] = {}
        for (src, dst), demand in demands_bps.items():
            if src == dst:
                raise ValueError(f"demand with equal endpoints {src!r}")
            if demand < 0:
                raise ValueError(f"negative demand for {src}->{dst}")
            self._demands[(src, dst)] = float(demand)
        if flow_counts is not None:
            self._flows = {pair: int(count) for pair, count in flow_counts.items()}
        else:
            self._flows = {
                pair: max(1, int(round(demand / bps_per_flow)))
                for pair, demand in self._demands.items()
            }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def demand(self, src: str, dst: str) -> float:
        return self._demands.get((src, dst), 0.0)

    def flows(self, src: str, dst: str) -> int:
        return self._flows.get((src, dst), 1)

    @property
    def pairs(self) -> List[Pair]:
        return list(self._demands)

    def items(self) -> Iterator[Tuple[Pair, float]]:
        return iter(self._demands.items())

    def aggregates(self, min_demand_bps: float = 1.0) -> List[Aggregate]:
        """Non-trivial aggregates, in deterministic order."""
        return [
            Aggregate(src, dst, demand, self.flows(src, dst))
            for (src, dst), demand in self._demands.items()
            if demand >= min_demand_bps
        ]

    @property
    def total_demand_bps(self) -> float:
        return sum(self._demands.values())

    def ingress_bps(self, node: str) -> float:
        """Total traffic sourced at ``node``."""
        return sum(d for (src, _), d in self._demands.items() if src == node)

    def egress_bps(self, node: str) -> float:
        """Total traffic destined to ``node``."""
        return sum(d for (_, dst), d in self._demands.items() if dst == node)

    # ------------------------------------------------------------------
    # Shaping
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return TrafficMatrix(
            {pair: demand * factor for pair, demand in self._demands.items()}
        )

    def with_demands(self, demands_bps: Mapping[Pair, float]) -> "TrafficMatrix":
        """A copy with some demands replaced (flow counts recomputed)."""
        merged = dict(self._demands)
        merged.update({pair: float(d) for pair, d in demands_bps.items()})
        return TrafficMatrix(merged)

    def __len__(self) -> int:
        return len(self._demands)

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(pairs={len(self._demands)}, "
            f"total={self.total_demand_bps / 1e9:.2f} Gb/s)"
        )

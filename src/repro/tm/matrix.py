"""The traffic matrix datatype.

A :class:`TrafficMatrix` maps ordered PoP pairs to aggregate demands.  Each
aggregate carries a mean rate (bits/s) and a flow count — the paper's
latency objective weights each aggregate by its number of flows ``n_a``, and
ingress routers are assumed to report both quantities (§5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

Pair = Tuple[str, str]

#: Version tag of the :func:`to_json` document layout.
TM_JSON_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Aggregate:
    """Traffic between one ordered PoP pair."""

    src: str
    dst: str
    demand_bps: float
    n_flows: int = 1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"aggregate with equal endpoints {self.src!r}")
        if self.demand_bps < 0:
            raise ValueError(f"negative demand for {self.src}->{self.dst}")
        if self.n_flows < 1:
            raise ValueError(f"aggregate {self.src}->{self.dst} needs >= 1 flow")

    @property
    def pair(self) -> Pair:
        return (self.src, self.dst)


# One flow per 5 Mb/s of demand is a reasonable backbone-aggregate figure;
# the exact constant only affects the flow-count weighting, not feasibility.
DEFAULT_BPS_PER_FLOW = 5e6


class TrafficMatrix:
    """Demands for a set of ordered PoP pairs.

    The matrix is immutable in spirit: shaping operations return new
    matrices.  Pairs with zero demand are retained (the locality LP may
    redistribute volume onto them) but are dropped by :meth:`aggregates`.
    """

    def __init__(
        self,
        demands_bps: Mapping[Pair, float],
        flow_counts: Optional[Mapping[Pair, int]] = None,
        bps_per_flow: float = DEFAULT_BPS_PER_FLOW,
    ) -> None:
        self._demands: Dict[Pair, float] = {}
        for (src, dst), demand in demands_bps.items():
            if src == dst:
                raise ValueError(f"demand with equal endpoints {src!r}")
            if demand < 0:
                raise ValueError(f"negative demand for {src}->{dst}")
            self._demands[(src, dst)] = float(demand)
        if flow_counts is not None:
            self._flows = {pair: int(count) for pair, count in flow_counts.items()}
        else:
            self._flows = {
                pair: max(1, int(round(demand / bps_per_flow)))
                for pair, demand in self._demands.items()
            }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def demand(self, src: str, dst: str) -> float:
        return self._demands.get((src, dst), 0.0)

    def flows(self, src: str, dst: str) -> int:
        return self._flows.get((src, dst), 1)

    @property
    def pairs(self) -> List[Pair]:
        return list(self._demands)

    def items(self) -> Iterator[Tuple[Pair, float]]:
        return iter(self._demands.items())

    def aggregates(self, min_demand_bps: float = 1.0) -> List[Aggregate]:
        """Non-trivial aggregates, in deterministic order."""
        return [
            Aggregate(src, dst, demand, self.flows(src, dst))
            for (src, dst), demand in self._demands.items()
            if demand >= min_demand_bps
        ]

    @property
    def total_demand_bps(self) -> float:
        return sum(self._demands.values())

    def ingress_bps(self, node: str) -> float:
        """Total traffic sourced at ``node``."""
        return sum(d for (src, _), d in self._demands.items() if src == node)

    def egress_bps(self, node: str) -> float:
        """Total traffic destined to ``node``."""
        return sum(d for (_, dst), d in self._demands.items() if dst == node)

    # ------------------------------------------------------------------
    # Shaping
    # ------------------------------------------------------------------
    def scaled(
        self, factor: float, pairs: Optional[Iterable[Pair]] = None
    ) -> "TrafficMatrix":
        """A copy with demands multiplied by ``factor``.

        With ``pairs=None`` every demand is scaled (the paper's uniform
        load dial).  With an explicit pair collection only those pairs
        surge — the flash-crowd perturbation — while all other demands
        and the overall pair (insertion) order are preserved, so the
        result stays order-stable under :meth:`__eq__` and JSON round
        trips.  Pairs absent from the matrix raise ``KeyError`` rather
        than silently creating demand out of nothing.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        if pairs is None:
            return TrafficMatrix(
                {pair: demand * factor for pair, demand in self._demands.items()}
            )
        surged = set()
        for pair in pairs:
            if pair not in self._demands:
                raise KeyError(f"no demand pair {pair[0]} -> {pair[1]}")
            surged.add(pair)
        return TrafficMatrix(
            {
                pair: demand * factor if pair in surged else demand
                for pair, demand in self._demands.items()
            }
        )

    def with_demands(self, demands_bps: Mapping[Pair, float]) -> "TrafficMatrix":
        """A copy with some demands replaced (flow counts recomputed)."""
        merged = dict(self._demands)
        merged.update({pair: float(d) for pair, d in demands_bps.items()})
        return TrafficMatrix(merged)

    def aggregated(self, node_map: Mapping[str, str]) -> "TrafficMatrix":
        """Collapse endpoints through ``node_map``, summing demands.

        Every endpoint is replaced by ``node_map[endpoint]`` (names absent
        from the map keep themselves); demands and flow counts of pairs
        that collapse onto the same mapped pair are summed.  Pairs whose
        two endpoints collapse together (intra-group traffic) are
        *dropped* — compare :attr:`total_demand_bps` before and after to
        account for the removed volume, as :mod:`repro.tm.regions` does.
        Mapped pairs appear in first-touch order of the original
        (insertion-ordered) pairs, so the result is deterministic.
        """
        demands: Dict[Pair, float] = {}
        flows: Dict[Pair, int] = {}
        for (src, dst), demand in self._demands.items():
            mapped = (node_map.get(src, src), node_map.get(dst, dst))
            if mapped[0] == mapped[1]:
                continue
            demands[mapped] = demands.get(mapped, 0.0) + demand
            flows[mapped] = flows.get(mapped, 0) + self.flows(src, dst)
        return TrafficMatrix(demands, flow_counts=flows)

    def __len__(self) -> int:
        return len(self._demands)

    def __eq__(self, other: object) -> bool:
        """Equal iff demands (including pair order) and flow counts match.

        Pair order matters downstream — :meth:`aggregates` order feeds the
        LP models — so two matrices with identical values but different
        insertion order are *not* equal.
        """
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return (
            list(self._demands.items()) == list(other._demands.items())
            and all(
                self.flows(*pair) == other.flows(*pair)
                for pair in self._demands
            )
        )

    __hash__ = None  # mutable mapping inside; never usable as a dict key

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(pairs={len(self._demands)}, "
            f"total={self.total_demand_bps / 1e9:.2f} Gb/s)"
        )


# ----------------------------------------------------------------------
# Serialization (mirrors :mod:`repro.net.io` for networks)
# ----------------------------------------------------------------------
def to_json(tm: TrafficMatrix) -> str:
    """Serialize a traffic matrix to a JSON string.

    Pairs appear in the matrix's own (insertion) order — the order
    :meth:`TrafficMatrix.aggregates` feeds the LP models — so a round trip
    is faithful, and the output is deterministic for signature hashing.
    Zero-demand pairs are retained, as the matrix itself retains them.
    """
    payload = {
        "format": "repro-tm",
        "version": TM_JSON_FORMAT_VERSION,
        "pairs": [
            {
                "src": src,
                "dst": dst,
                "demand_bps": demand,
                "n_flows": tm.flows(src, dst),
            }
            for (src, dst), demand in tm.items()
        ],
    }
    return json.dumps(payload, indent=2)


def from_json(text: str) -> TrafficMatrix:
    """Reconstruct a traffic matrix from :func:`to_json` output."""
    payload = json.loads(text)
    if payload.get("format") != "repro-tm":
        raise ValueError("not a repro traffic-matrix document")
    if payload.get("version") != TM_JSON_FORMAT_VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    demands: Dict[Pair, float] = {}
    flows: Dict[Pair, int] = {}
    for entry in payload["pairs"]:
        pair = (entry["src"], entry["dst"])
        demands[pair] = float(entry["demand_bps"])
        flows[pair] = int(entry["n_flows"])
    return TrafficMatrix(demands, flow_counts=flows)

"""Traffic matrices: gravity-model synthesis, locality shaping and scaling.

Reproduces the paper's workload pipeline (§3): a Zipf/gravity demand model,
a linear-program *locality* extension that shifts volume from long-distance
aggregates to short-distance ones, and a scaler that loads the network so
that optimal routing could still fit the traffic if demands grew by a target
factor (1.3x in the paper, i.e. 77% min-cut load).
"""

from repro.tm.matrix import TrafficMatrix
from repro.tm.gravity import gravity_traffic_matrix
from repro.tm.locality import apply_locality
from repro.tm.scale import max_scale_factor, scale_to_growth_headroom

__all__ = [
    "TrafficMatrix",
    "gravity_traffic_matrix",
    "apply_locality",
    "max_scale_factor",
    "scale_to_growth_headroom",
]

"""Gravity-model traffic synthesis.

The paper synthesizes demand with "a variant of the gravity model [Roughan
2005].  This model generates traffic aggregates between PoP pairs according
to a Zipf distribution, as real-world traffic has been characterized."

We implement that as: each PoP draws a Zipf-ranked mass (rank assigned by a
random permutation), and the aggregate volume between two PoPs is
proportional to the product of their masses.  The product of two Zipf
variables is itself heavy-tailed, giving the few-elephants/many-mice
aggregate size distribution the paper relies on.  Absolute volume is
irrelevant at this stage — :mod:`repro.tm.scale` normalizes matrices to a
target network load.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.net.graph import Network
from repro.tm.matrix import TrafficMatrix


def zipf_masses(n: int, rng: np.random.Generator, exponent: float = 1.0) -> np.ndarray:
    """Zipf-distributed masses for ``n`` PoPs, randomly assigned to ranks."""
    if n < 1:
        raise ValueError(f"need at least one PoP, got {n}")
    if exponent <= 0:
        raise ValueError(f"Zipf exponent must be positive, got {exponent}")
    ranks = rng.permutation(n) + 1
    return ranks.astype(float) ** (-exponent)


def gravity_traffic_matrix(
    network: Network,
    rng: np.random.Generator,
    exponent: float = 1.0,
    total_bps: float = 1e9,
) -> TrafficMatrix:
    """A gravity-model traffic matrix over every ordered PoP pair.

    ``total_bps`` sets the (arbitrary) pre-scaling total volume; call
    :func:`repro.tm.scale.scale_to_growth_headroom` afterwards to load the
    network as the paper does.
    """
    names = network.node_names
    if len(names) < 2:
        raise ValueError("gravity model needs at least two PoPs")
    masses = zipf_masses(len(names), rng, exponent)
    demands: Dict[Tuple[str, str], float] = {}
    weight_total = 0.0
    for i, src in enumerate(names):
        for j, dst in enumerate(names):
            if i == j:
                continue
            weight = masses[i] * masses[j]
            demands[(src, dst)] = weight
            weight_total += weight
    factor = total_bps / weight_total
    return TrafficMatrix({pair: w * factor for pair, w in demands.items()})


def sparse_gravity_traffic_matrix(
    network: Network,
    rng: np.random.Generator,
    n_pairs: int,
    exponent: float = 1.0,
    total_bps: float = 1e9,
) -> TrafficMatrix:
    """A gravity matrix over a mass-weighted *sample* of node pairs.

    :func:`gravity_traffic_matrix` materializes every ordered pair —
    10^8 demands on an ingest-scale graph.  Real backbone matrices are
    sparse (most PoP pairs exchange negligible traffic), so this samples
    ``n_pairs`` distinct pairs with endpoint probability proportional to
    the same Zipf masses: heavy PoPs appear in many pairs, light ones in
    few, preserving the few-elephants/many-mice shape at any scale.
    Deterministic for a given generator state.
    """
    names = network.node_names
    n = len(names)
    if n < 2:
        raise ValueError("gravity model needs at least two PoPs")
    if n_pairs < 1:
        raise ValueError(f"need at least one pair, got {n_pairs}")
    n_pairs = min(n_pairs, n * (n - 1))
    masses = zipf_masses(n, rng, exponent)
    probabilities = masses / masses.sum()
    demands: Dict[Tuple[str, str], float] = {}
    # Rejection-sample distinct pairs; with heavy skew the tail of distinct
    # pairs thins out, so after a stagnant round fall back to deterministic
    # enumeration in descending-mass order.
    stagnant = 0
    while len(demands) < n_pairs and stagnant < 2:
        batch = max(64, 2 * (n_pairs - len(demands)))
        srcs = rng.choice(n, size=batch, p=probabilities)
        dsts = rng.choice(n, size=batch, p=probabilities)
        before = len(demands)
        for i, j in zip(srcs.tolist(), dsts.tolist()):
            if i == j:
                continue
            pair = (names[i], names[j])
            if pair in demands:
                continue
            demands[pair] = masses[i] * masses[j]
            if len(demands) >= n_pairs:
                break
        stagnant = stagnant + 1 if len(demands) == before else 0
    if len(demands) < n_pairs:
        order = sorted(range(n), key=lambda i: (-masses[i], i))
        for i in order:
            for j in order:
                if i == j:
                    continue
                pair = (names[i], names[j])
                if pair not in demands:
                    demands[pair] = masses[i] * masses[j]
                    if len(demands) >= n_pairs:
                        break
            if len(demands) >= n_pairs:
                break
    weight_total = sum(demands.values())
    factor = total_bps / weight_total
    return TrafficMatrix({pair: w * factor for pair, w in demands.items()})

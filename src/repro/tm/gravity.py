"""Gravity-model traffic synthesis.

The paper synthesizes demand with "a variant of the gravity model [Roughan
2005].  This model generates traffic aggregates between PoP pairs according
to a Zipf distribution, as real-world traffic has been characterized."

We implement that as: each PoP draws a Zipf-ranked mass (rank assigned by a
random permutation), and the aggregate volume between two PoPs is
proportional to the product of their masses.  The product of two Zipf
variables is itself heavy-tailed, giving the few-elephants/many-mice
aggregate size distribution the paper relies on.  Absolute volume is
irrelevant at this stage — :mod:`repro.tm.scale` normalizes matrices to a
target network load.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.net.graph import Network
from repro.tm.matrix import TrafficMatrix


def zipf_masses(n: int, rng: np.random.Generator, exponent: float = 1.0) -> np.ndarray:
    """Zipf-distributed masses for ``n`` PoPs, randomly assigned to ranks."""
    if n < 1:
        raise ValueError(f"need at least one PoP, got {n}")
    if exponent <= 0:
        raise ValueError(f"Zipf exponent must be positive, got {exponent}")
    ranks = rng.permutation(n) + 1
    return ranks.astype(float) ** (-exponent)


def gravity_traffic_matrix(
    network: Network,
    rng: np.random.Generator,
    exponent: float = 1.0,
    total_bps: float = 1e9,
) -> TrafficMatrix:
    """A gravity-model traffic matrix over every ordered PoP pair.

    ``total_bps`` sets the (arbitrary) pre-scaling total volume; call
    :func:`repro.tm.scale.scale_to_growth_headroom` afterwards to load the
    network as the paper does.
    """
    names = network.node_names
    if len(names) < 2:
        raise ValueError("gravity model needs at least two PoPs")
    masses = zipf_masses(len(names), rng, exponent)
    demands: Dict[Tuple[str, str], float] = {}
    weight_total = 0.0
    for i, src in enumerate(names):
        for j, dst in enumerate(names):
            if i == j:
                continue
            weight = masses[i] * masses[j]
            demands[(src, dst)] = weight
            weight_total += weight
    factor = total_bps / weight_total
    return TrafficMatrix({pair: w * factor for pair, w in demands.items()})

"""Scaling traffic matrices to a target network load (paper §3).

"We scale each traffic matrix so that the network is moderately loaded, but
not close to being overloaded.  The goal is that with optimal routing it is
still (just) possible to route the network without congestion if all traffic
increases by 30%.  This gives a network where, if we minimize maximum link
utilization, the min-cut has 23% headroom" (min-cut load 77%, growth factor
1.3 = 1/0.77).

The key primitive is the *maximum concurrent flow* value: the largest
multiplier λ such that λ·TM is routable without overloading any link.  We
compute it with a link-based multi-commodity flow LP whose commodities are
grouped by source node (V commodities over E links), which is exactly
equivalent to per-pair commodities for fractional flow but far smaller.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lp import InfeasibleError, LinearProgram, LinExpr, Variable
from repro.net.graph import Network
from repro.tm.matrix import TrafficMatrix


def max_scale_factor(network: Network, tm: TrafficMatrix) -> float:
    """Largest λ such that λ·TM fits the network without congestion.

    Also interpretable as 1 / (min-cut load) of the matrix: a return value
    of 1.3 means the busiest cut is 77% loaded under the most permissive
    routing.
    """
    lam, _ = max_scale_flows(network, tm, want_flows=False)
    return lam


def max_scale_flows(
    network: Network, tm: TrafficMatrix, want_flows: bool = True
):
    """Max concurrent-flow scale λ plus the achieving per-source flows.

    The flows route λ·TM within capacity, so dividing them by λ routes TM
    itself with maximum link utilization 1/λ — which is the *optimal*
    minimum-max-utilization (MinMax) flow.  Returned as
    ``{source: {(u, v): bits_per_second_at_scale_1}}`` (already divided by
    λ); ``None`` when ``want_flows`` is False.
    """
    aggregates = tm.aggregates()
    if not aggregates:
        raise ValueError("traffic matrix has no demand")

    # Normalize units before building the LP: raw bits/s mixes 1e6-scale
    # demands with 1e10-scale capacities, which provokes spurious
    # unbounded/infeasible results from the solver.  We express demands as
    # fractions of total demand and capacities in units of the mean link
    # capacity; lambda is rescaled on the way out.
    demand_total = sum(agg.demand_bps for agg in aggregates)
    links = list(network.links())
    capacity_unit = sum(link.capacity_bps for link in links) / len(links)

    sources = sorted({agg.src for agg in aggregates})
    demand_from: Dict[str, Dict[str, float]] = {src: {} for src in sources}
    for agg in aggregates:
        demand_from[agg.src][agg.dst] = (
            demand_from[agg.src].get(agg.dst, 0.0) + agg.demand_bps / demand_total
        )
    lp = LinearProgram()
    lam = lp.variable("lambda", lower=0.0)
    flow: Dict[Tuple[str, Tuple[str, str]], Variable] = {}
    for src in sources:
        for link in links:
            flow[(src, link.key)] = lp.variable(f"f[{src},{link.src}->{link.dst}]")

    # Flow conservation: for commodity (source s) at node v,
    #   outflow - inflow = lambda * (total demand from s)   if v == s
    #   outflow - inflow = -lambda * demand(s, v)           otherwise.
    for src in sources:
        total_out = sum(demand_from[src].values())
        for node in network.node_names:
            expr = LinExpr()
            for link in network.out_links(node):
                expr.add_term(flow[(src, link.key)], 1.0)
            for link in network.in_links(node):
                expr.add_term(flow[(src, link.key)], -1.0)
            if node == src:
                expr.add_term(lam, -total_out)
            else:
                expr.add_term(lam, demand_from[src].get(node, 0.0))
            lp.add_constraint(expr, "==", 0.0)

    # Capacity: total flow on each link within (normalized) capacity.
    for link in links:
        expr = LinExpr()
        for src in sources:
            expr.add_term(flow[(src, link.key)], 1.0)
        lp.add_constraint(expr, "<=", link.capacity_bps / capacity_unit)

    objective = LinExpr()
    objective.add_term(lam, -1.0)
    lp.minimize(objective)
    try:
        solution = lp.solve()
    except InfeasibleError as exc:  # pragma: no cover - cannot happen: λ=0 fits
        raise RuntimeError("max concurrent flow LP infeasible") from exc
    # lambda was computed in normalized units: undo the normalization.
    lam_value = solution.value(lam) * capacity_unit / demand_total
    if not want_flows:
        return lam_value, None
    if lam_value <= 0:
        return lam_value, {src: {} for src in sources}
    # Flow variables are in capacity units and route λ·TM; de-normalize
    # and divide by λ to obtain the optimal MinMax flow for TM itself.
    flows: Dict[str, Dict[Tuple[str, str], float]] = {}
    for src in sources:
        per_link: Dict[Tuple[str, str], float] = {}
        for link in links:
            raw = solution.value(flow[(src, link.key)])
            if raw > 1e-9:
                per_link[link.key] = raw * capacity_unit / lam_value
        flows[src] = per_link
    return lam_value, flows


def scale_to_growth_headroom(
    network: Network, tm: TrafficMatrix, growth_factor: float = 1.3
) -> TrafficMatrix:
    """Scale so traffic could still grow by ``growth_factor`` and fit.

    ``growth_factor=1.3`` reproduces the paper's default load (min-cut at
    77%); its Figure 8 uses 1.65 (min-cut at 60%), and its Figure 17 sweeps
    the equivalent of min-cut loads from 60% to 90%.
    """
    if growth_factor < 1.0:
        raise ValueError(
            f"growth factor below 1 would overload the network: {growth_factor}"
        )
    lam = max_scale_factor(network, tm)
    if lam <= 0:
        raise ValueError("traffic matrix is unroutable at any positive scale")
    return tm.scaled(lam / growth_factor)


def min_cut_load(network: Network, tm: TrafficMatrix) -> float:
    """Load of the most constrained cut under optimal (MinMax) routing."""
    return 1.0 / max_scale_factor(network, tm)

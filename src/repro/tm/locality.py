"""The locality extension to the gravity model (paper §3).

"The original gravity model dictates the ingress and egress traffic volumes
at each PoP; our extension moves load among aggregates that span different
distances according to the locality parameter.  For values greater than zero
we redistribute some traffic from longer-distance flows to shorter-distance
ones.  Specifically, a locality parameter of ℓ allows short-distance flows
to increase by ℓ times their original demand.  [...] We express these
constraints in a simple linear program whose solution yields per-aggregate
traffic volumes."

Our linear program:

    minimize    sum_a  v'_a * dist_a
    subject to  sum_{a from i} v'_a  =  original ingress of i   (for all i)
                sum_{a to j}   v'_a  =  original egress of j    (for all j)
                0 <= v'_a <= (1 + ell) * v_a                    (for all a)

With ``ell = 0`` the only feasible point is the original matrix (each demand
is capped at its original value while marginals must be preserved), so the
transformation degrades gracefully.  For ``ell > 0`` volume migrates onto
short-distance aggregates — each may grow by at most ``ell`` times its
original demand — and the distance-weighted objective drains the longest
aggregates first, exactly the "moves load among aggregates that span
different distances" behaviour the paper describes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lp import LinearProgram, LinExpr
from repro.net.graph import Network
from repro.net.paths import shortest_path_delays
from repro.tm.matrix import TrafficMatrix


def aggregate_distances_s(network: Network, tm: TrafficMatrix) -> Dict[Tuple[str, str], float]:
    """Shortest-path delay for each pair in the matrix (the LP's distances)."""
    distances: Dict[Tuple[str, str], float] = {}
    by_source: Dict[str, Dict[str, float]] = {}
    for (src, dst) in tm.pairs:
        if src not in by_source:
            by_source[src] = shortest_path_delays(network, src)
        if dst not in by_source[src]:
            raise ValueError(f"no path {src} -> {dst}; network must be connected")
        distances[(src, dst)] = by_source[src][dst]
    return distances


def apply_locality(
    network: Network,
    tm: TrafficMatrix,
    locality: float,
    distances: Optional[Dict[Tuple[str, str], float]] = None,
) -> TrafficMatrix:
    """Redistribute volume toward short-distance aggregates.

    ``locality`` is the paper's ℓ parameter; 0 returns an equivalent matrix,
    1 is the paper's default ("a locality of one suffices to add significant
    locality"), 2 is the top of its Figure 18 sweep.

    ``distances`` optionally supplies precomputed per-pair shortest-path
    delays (it must cover every pair in ``tm``); region-aggregated sweeps
    on ingest-scale graphs reuse one delay sweep per gateway instead of
    recomputing it for every locality value.
    """
    if locality < 0:
        raise ValueError(f"locality must be non-negative, got {locality}")
    if locality == 0:
        return tm

    if distances is None:
        distances = aggregate_distances_s(network, tm)
    else:
        missing = [pair for pair in tm.pairs if pair not in distances]
        if missing:
            raise ValueError(
                f"precomputed distances missing {len(missing)} pair(s), "
                f"first {missing[0][0]} -> {missing[0][1]}"
            )
    pairs = tm.pairs
    # Normalize demands to fractions of the total and distances to units
    # of the mean: raw bits/s coefficients provoke numerical failures in
    # the solver (cf. the same normalization in repro.tm.scale).
    demand_unit = tm.total_demand_bps
    if demand_unit <= 0:
        return tm
    distance_unit = sum(distances.values()) / len(distances)
    if distance_unit <= 0:
        distance_unit = 1.0

    lp = LinearProgram()
    volume: Dict[Tuple[str, str], object] = {}
    for pair in pairs:
        original = tm.demand(*pair) / demand_unit
        volume[pair] = lp.variable(
            f"v[{pair[0]}->{pair[1]}]", lower=0.0, upper=(1.0 + locality) * original
        )

    nodes = {node for pair in pairs for node in pair}
    for node in sorted(nodes):
        ingress = LinExpr()
        egress = LinExpr()
        for pair in pairs:
            if pair[0] == node:
                ingress.add_term(volume[pair], 1.0)
            if pair[1] == node:
                egress.add_term(volume[pair], 1.0)
        lp.add_constraint(ingress, "==", tm.ingress_bps(node) / demand_unit)
        lp.add_constraint(egress, "==", tm.egress_bps(node) / demand_unit)

    objective = LinExpr()
    for pair in pairs:
        objective.add_term(volume[pair], distances[pair] / distance_unit)
    lp.minimize(objective)

    solution = lp.solve()
    new_demands = {
        pair: max(0.0, solution.value(volume[pair]) * demand_unit)
        for pair in pairs
    }
    return TrafficMatrix(new_demands)

"""Per-region demand aggregation for ingest-scale graphs.

The path-LP column count grows with (pairs x paths): a 10k-node graph with
a dense traffic matrix would hand the LP 10^8 columns.  This module bounds
it by clustering nodes *geographically* (the same PoP coordinates
:mod:`repro.net.geo` derives link delays from), electing one gateway per
region, and re-homing every demand onto its endpoints' gateways:

* **exact at zoo scale** — :func:`maybe_aggregate` returns the matrix
  untouched while its pair count fits the budget, so nothing changes for
  the paper-scale experiments;
* **explicitly approximate at ingest scale** — once aggregation kicks in,
  the result is wrapped in a :class:`RegionalDemands` whose ``label``
  (e.g. ``"region~16"``) marks the approximation, mirroring the ``~gap``
  suffix of the approximate MinMax LP.  Intra-region demand (traffic both
  of whose endpoints land in one region) is dropped from the routed
  matrix and accounted in ``dropped_intra_bps``.

Clustering is deterministic farthest-point k-center on great-circle
distance (first center = node nearest the fleet centroid, ties by name),
so the same network always yields the same regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.net.geo import great_circle_km_many
from repro.net.graph import Network
from repro.tm.matrix import TrafficMatrix

FloatArray = npt.NDArray[np.float64]

#: Default pair budget: above this many demand pairs, aggregation engages.
#: 4096 pairs x k=10 paths keeps the path LP around 40k columns, the scale
#: PR 9's compiled-LP benchmarks showed comfortable.
DEFAULT_MAX_PAIRS = 4096


@dataclass(frozen=True)
class RegionalDemands:
    """An explicitly approximate, region-aggregated traffic matrix.

    ``matrix`` is the gateway-to-gateway matrix to route; ``node_region``
    maps every node to its region id; ``gateways[r]`` is region ``r``'s
    elected gateway.  ``dropped_intra_bps`` is the intra-region volume the
    aggregation removed from routing.  ``label`` marks results derived
    from this matrix as approximate (``"region~<n>"``).
    """

    matrix: TrafficMatrix
    node_region: Dict[str, int]
    gateways: Tuple[str, ...]
    dropped_intra_bps: float
    label: str

    @property
    def n_regions(self) -> int:
        return len(self.gateways)


def geographic_regions(network: Network, n_regions: int) -> Dict[str, int]:
    """Deterministic geographic clustering of a network's nodes.

    Farthest-point k-center on great-circle distance: the first center is
    the node nearest the coordinate centroid, each further center the node
    farthest from all chosen centers; every node then joins its nearest
    center (all ties broken toward the lower sorted-name index).  Runs in
    O(n_regions x n) with vectorized haversines.
    """
    names = sorted(network.node_names)
    n = len(names)
    if n == 0:
        return {}
    if n_regions < 1:
        raise ValueError(f"need >= 1 region, got {n_regions}")
    n_regions = min(n_regions, n)
    lats = np.asarray(
        [network.node(name).lat_deg for name in names], dtype=np.float64
    )
    lons = np.asarray(
        [network.node(name).lon_deg for name in names], dtype=np.float64
    )
    center_lat = float(lats.mean())
    center_lon = float(lons.mean())
    from_centroid = great_circle_km_many(center_lat, center_lon, lats, lons)
    first = int(np.argmin(from_centroid))  # argmin ties -> lowest index
    centers = [first]
    center_dists = [
        great_circle_km_many(
            float(lats[first]), float(lons[first]), lats, lons
        )
    ]
    min_dist = center_dists[0].copy()
    while len(centers) < n_regions:
        farthest = int(np.argmax(min_dist))
        if min_dist[farthest] <= 0.0:
            # Every remaining node is co-located with a chosen center; a
            # duplicate center would own no nodes (ties assign to the
            # earlier center), leaving an empty region.
            break
        centers.append(farthest)
        dist = great_circle_km_many(
            float(lats[farthest]), float(lons[farthest]), lats, lons
        )
        center_dists.append(dist)
        min_dist = np.minimum(min_dist, dist)
    stacked = np.stack(center_dists)  # (n_centers, n)
    assignment = np.argmin(stacked, axis=0)  # ties -> lowest center index
    return {name: int(assignment[i]) for i, name in enumerate(names)}


def region_gateways(
    network: Network, node_region: Dict[str, int]
) -> Tuple[str, ...]:
    """One gateway per region: the highest-degree member, ties by name."""
    n_regions = max(node_region.values()) + 1 if node_region else 0
    best: List[Optional[str]] = [None] * n_regions
    for name in sorted(node_region):
        region = node_region[name]
        incumbent = best[region]
        if incumbent is None or network.degree(name) > network.degree(incumbent):
            best[region] = name
    gateways: List[str] = []
    for region, gateway in enumerate(best):
        if gateway is None:
            raise ValueError(f"region {region} has no members")
        gateways.append(gateway)
    return tuple(gateways)


def aggregate_by_region(
    network: Network, tm: TrafficMatrix, n_regions: int
) -> RegionalDemands:
    """Aggregate a matrix onto per-region gateways (always aggregates).

    Use :func:`maybe_aggregate` for the budget-gated entry point that
    stays exact at zoo scale.
    """
    node_region = geographic_regions(network, n_regions)
    gateways = region_gateways(network, node_region)
    node_map = {name: gateways[region] for name, region in node_region.items()}
    matrix = tm.aggregated(node_map)
    dropped = tm.total_demand_bps - matrix.total_demand_bps
    return RegionalDemands(
        matrix=matrix,
        node_region=node_region,
        gateways=gateways,
        dropped_intra_bps=dropped,
        label=f"region~{len(gateways)}",
    )


def maybe_aggregate(
    network: Network,
    tm: TrafficMatrix,
    max_pairs: int = DEFAULT_MAX_PAIRS,
    n_regions: Optional[int] = None,
) -> Tuple[TrafficMatrix, Optional[RegionalDemands]]:
    """The matrix to route, aggregated only when it exceeds the budget.

    Returns ``(tm, None)`` — bit-exact, nothing changed — while the pair
    count fits ``max_pairs``.  Beyond it, returns the gateway matrix plus
    the :class:`RegionalDemands` describing the (labelled) approximation.
    ``n_regions`` defaults to the largest region count whose full
    gateway-pair grid still fits the budget.
    """
    if max_pairs < 2:
        raise ValueError(f"max_pairs must be >= 2, got {max_pairs}")
    if len(tm) <= max_pairs:
        return tm, None
    if n_regions is None:
        # Largest r with r*(r-1) <= max_pairs.
        n_regions = int((1.0 + (1.0 + 4.0 * max_pairs) ** 0.5) / 2.0)
        while n_regions * (n_regions - 1) > max_pairs:
            n_regions -= 1
        n_regions = max(2, n_regions)
    regional = aggregate_by_region(network, tm, n_regions)
    return regional.matrix, regional

"""MPLS-TE auto-bandwidth style greedy placement.

The paper (§3): "Automatic bandwidth allocation for MPLS-TE considers one
aggregate at a time, and places each aggregate on its shortest
non-congested path. [...] In the following, we focus on B4 but the same
observations also hold for MPLS-TE."

Unlike B4's synchronized water-filling, MPLS-TE is *sequential*: each
aggregate (in descending demand order by default, mirroring auto-bandwidth
re-signalling of the biggest LSPs first) grabs its entire demand on the
lowest-delay path whose links can still hold it, splitting across several
LSPs only when no single path fits.  This makes its outcome
order-dependent — one more greedy pathology on top of B4's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.graph import Network
from repro.net.paths import KspCache, path_links
from repro.routing.base import PathAllocation, Placement, RoutingScheme
from repro.tm.matrix import Aggregate, TrafficMatrix

RATE_EPSILON_BPS = 1.0


class MplsTeRouting(RoutingScheme):
    """Sequential greedy placement on the shortest non-congested path."""

    name = "MPLS-TE"

    def __init__(
        self,
        headroom: float = 0.0,
        max_paths_per_aggregate: int = 25,
        order: str = "demand",
        cache: Optional[KspCache] = None,
    ) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        if order not in ("demand", "given"):
            raise ValueError(f"order must be 'demand' or 'given', got {order!r}")
        self.headroom = headroom
        self.max_paths_per_aggregate = max_paths_per_aggregate
        self.order = order
        self._cache = cache
        if headroom > 0:
            self.name = f"MPLS-TE(h={headroom:.0%})"

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        if self._cache is not None and self._cache.network is network:
            cache = self._cache
        else:
            cache = KspCache(network)
        residual = {
            link.key: link.capacity_bps * (1.0 - self.headroom)
            for link in network.links()
        }
        aggregates = tm.aggregates()
        if self.order == "demand":
            aggregates = sorted(
                aggregates, key=lambda agg: -agg.demand_bps
            )

        allocations: Dict[Aggregate, List[PathAllocation]] = {}
        unplaced: Dict[Aggregate, float] = {}
        for agg in aggregates:
            placed: List[Tuple[tuple, float]] = []
            remaining = agg.demand_bps
            # First preference: the whole aggregate on one path.
            for rank in range(self.max_paths_per_aggregate):
                paths = cache.get(agg.src, agg.dst, rank + 1)
                if len(paths) <= rank:
                    break
                path = paths[rank]
                if all(
                    residual[key] >= remaining - RATE_EPSILON_BPS
                    for key in path_links(path)
                ):
                    placed.append((path, remaining))
                    for key in path_links(path):
                        residual[key] -= remaining
                    remaining = 0.0
                    break
            if remaining > RATE_EPSILON_BPS:
                # Fall back to splitting over successive shortest paths
                # with whatever residual each can take.
                for rank in range(self.max_paths_per_aggregate):
                    if remaining <= RATE_EPSILON_BPS:
                        break
                    paths = cache.get(agg.src, agg.dst, rank + 1)
                    if len(paths) <= rank:
                        break
                    path = paths[rank]
                    room = min(residual[key] for key in path_links(path))
                    take = min(room, remaining)
                    if take <= RATE_EPSILON_BPS:
                        continue
                    placed.append((path, take))
                    for key in path_links(path):
                        residual[key] -= take
                    remaining -= take
            if remaining > RATE_EPSILON_BPS:
                # Nothing fits: force the leftover onto the shortest path.
                shortest = cache.shortest(agg.src, agg.dst)
                placed.append((shortest, remaining))
                unplaced[agg] = remaining
            total = sum(amount for _, amount in placed)
            merged: Dict[tuple, float] = {}
            for path, amount in placed:
                merged[path] = merged.get(path, 0.0) + amount
            allocations[agg] = [
                PathAllocation(path, amount / total)
                for path, amount in merged.items()
            ]
        return Placement(network, allocations, unplaced_bps=unplaced)

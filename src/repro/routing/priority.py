"""Differentiated traffic classes (paper §8, "Extension to differentiated
traffic classes").

"If an ISP does know which flows should be prioritized, it is
straightforward to extend our optimization framework to split aggregates
according to priority, and to modify the LP constraints and weights so as
to prioritize giving low latency paths to flows that will benefit most."

We implement exactly that: each aggregate belongs to a :class:`TrafficClass`
whose ``weight`` multiplies its flow count in the Figure 12 delay
objective.  A latency-sensitive class with weight 10 makes detouring one of
its flows cost as much as detouring ten best-effort flows, so under
contention the optimizer detours best-effort traffic first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.net.graph import Network
from repro.net.paths import KspCache
from repro.routing.base import Placement, RoutingScheme, normalize_allocations
from repro.routing.optimal import solve_iterative_latency
from repro.tm.matrix import Aggregate, TrafficMatrix

Pair = Tuple[str, str]


@dataclass(frozen=True)
class TrafficClass:
    """A named priority class with an objective weight multiplier."""

    name: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"class {self.name!r}: weight must be positive")


BEST_EFFORT = TrafficClass("best-effort", 1.0)
LATENCY_SENSITIVE = TrafficClass("latency-sensitive", 10.0)


class PriorityLatencyOptimalRouting(RoutingScheme):
    """Latency-optimal routing with per-class delay weights.

    ``classes`` maps (src, dst) pairs to a :class:`TrafficClass`; unmapped
    aggregates default to ``default_class``.  The placement returned is in
    terms of the original aggregates, so all standard metrics apply.
    """

    name = "PriorityLatencyOptimal"

    def __init__(
        self,
        classes: Mapping[Pair, TrafficClass],
        default_class: TrafficClass = BEST_EFFORT,
        headroom: float = 0.0,
        cache: Optional[KspCache] = None,
    ) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        self.classes = dict(classes)
        self.default_class = default_class
        self.headroom = headroom
        self._cache = cache

    def class_of(self, pair: Pair) -> TrafficClass:
        return self.classes.get(pair, self.default_class)

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        routed = (
            network.with_capacity_factor(1.0 - self.headroom)
            if self.headroom > 0
            else network
        )
        if self._cache is not None and self._cache.network is network:
            cache = self._cache
        else:
            cache = KspCache(network)

        # The class weight enters the Figure 12 objective through the
        # per-aggregate flow count: a weighted clone of the matrix is
        # optimized, then the placement is re-keyed to the real
        # aggregates (same pairs, same demands, original flow counts).
        originals = {agg.pair: agg for agg in tm.aggregates()}
        weighted = TrafficMatrix(
            {pair: agg.demand_bps for pair, agg in originals.items()},
            flow_counts={
                pair: max(1, round(agg.n_flows * self.class_of(pair).weight))
                for pair, agg in originals.items()
            },
        )
        result, _ = solve_iterative_latency(routed, weighted, cache=cache)
        rekeyed = {
            originals[agg.pair]: splits
            for agg, splits in result.fractions.items()
        }
        return Placement(network, normalize_allocations(rekeyed))

    def per_class_stretch(self, placement: Placement) -> Dict[str, float]:
        """Flow-weighted latency stretch per traffic class."""
        from repro.net.paths import path_delay_s, shortest_path_delays

        by_source: Dict[str, Dict[str, float]] = {}
        actual: Dict[str, float] = {}
        shortest: Dict[str, float] = {}
        for agg in placement.aggregates:
            if agg.src not in by_source:
                by_source[agg.src] = shortest_path_delays(
                    placement.network, agg.src
                )
            label = self.class_of(agg.pair).name
            mean_delay = sum(
                alloc.fraction * path_delay_s(placement.network, alloc.path)
                for alloc in placement.paths_for(agg)
            )
            actual[label] = actual.get(label, 0.0) + agg.n_flows * mean_delay
            shortest[label] = (
                shortest.get(label, 0.0)
                + agg.n_flows * by_source[agg.src][agg.dst]
            )
        return {
            label: actual[label] / shortest[label] if shortest[label] > 0 else 1.0
            for label in actual
        }

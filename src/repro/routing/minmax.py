"""MinMax traffic engineering (TeXCP / MATE style), paper §3.

"A pure MinMax approach optimizes traffic placement so as to minimize the
maximum link utilization.  This is insufficient, as it does not generate
unique solutions [...] One way to obtain a practical routing system is to
minimize the sum of path latencies as a tie-break between traffic
placements with equal maximum link utilization."

Two variants are provided, matching the paper's Figure 4(c) and 4(d):

* **full MinMax** (``k=None``): path sets are grown iteratively until the
  placement achieves the true optimal maximum utilization (computed exactly
  with a link-based multi-commodity flow LP — utilization optimality is the
  reciprocal of the maximum concurrent-flow scale);
* **MinMax K** (``k=10``): paths restricted to the k lowest-delay ones per
  aggregate, as TeXCP suggests.  On high-LLPD networks this variant can no
  longer always avoid congestion — the paper's key observation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lp import InfeasibleError
from repro.net.graph import Network
from repro.net.paths import KspCache, Path
from repro.routing.base import (
    Placement,
    RoutingScheme,
    normalize_allocations,
)
from repro.routing.optimal import (
    add_detour_paths,
    aggregates_crossing,
    grow_path_sets,
)
from repro.routing.pathlp import solve_minmax_approx, solve_minmax_lp
from repro.tm.matrix import Aggregate, TrafficMatrix


def optimal_max_utilization(network: Network, tm: TrafficMatrix) -> float:
    """The lowest achievable maximum link utilization for this matrix.

    For fractional multi-commodity flow, minimizing the maximum utilization
    is the reciprocal of the maximum concurrent-flow scale factor, which we
    already compute with a compact source-grouped link LP.
    """
    from repro.tm.scale import max_scale_factor

    lam = max_scale_factor(network, tm)
    if lam <= 0:
        raise InfeasibleError("traffic matrix cannot be routed at any scale")
    return 1.0 / lam


def mcf_seed_paths(
    network: Network, tm: TrafficMatrix
) -> "Tuple[float, Dict[Tuple[str, str], List[Path]]]":
    """Optimal MinMax utilization plus paths achieving it, per pair.

    The maximum-concurrent-flow LP's solution, rescaled, is an optimal
    minimum-max-utilization flow.  Decomposing each source commodity into
    simple paths (multi-sink flow decomposition) yields path sets that
    provably let the path-based MinMax LP reach the exact optimum — no
    iterative guessing about which k-shortest paths might be needed.
    """
    from repro.net.paths import NoPathError, path_links, shortest_path
    from repro.tm.scale import max_scale_flows

    lam, flows = max_scale_flows(network, tm)
    if lam <= 0:
        raise InfeasibleError("traffic matrix cannot be routed at any scale")
    demands_from: Dict[str, Dict[str, float]] = {}
    for agg in tm.aggregates():
        demands_from.setdefault(agg.src, {})[agg.dst] = agg.demand_bps

    seeds: Dict[Tuple[str, str], List[Path]] = {}
    for src, per_link in flows.items():
        remaining_flow = dict(per_link)
        remaining_demand = dict(demands_from.get(src, {}))
        # Each strip exhausts a link or finishes a destination, so the
        # loop is bounded by |E| + |destinations|.
        for _ in range(len(per_link) + len(remaining_demand) + 1):
            pending = [
                (dst, demand)
                for dst, demand in remaining_demand.items()
                if demand > 1e-6
            ]
            if not pending:
                break
            dst = max(pending, key=lambda item: item[1])[0]
            subgraph = network.subgraph_with_links(remaining_flow)
            try:
                path = shortest_path(subgraph, src, dst)
            except NoPathError:
                # Numerical dust: this destination's residual is noise.
                del remaining_demand[dst]
                continue
            strip = min(
                remaining_demand[dst],
                min(remaining_flow[key] for key in path_links(path)),
            )
            for key in path_links(path):
                remaining_flow[key] -= strip
                if remaining_flow[key] <= 1e-9:
                    del remaining_flow[key]
            remaining_demand[dst] -= strip
            if remaining_demand[dst] <= 1e-6:
                del remaining_demand[dst]
            seeds.setdefault((src, dst), [])
            if path not in seeds[(src, dst)]:
                seeds[(src, dst)].append(path)
    return 1.0 / lam, seeds


class MinMaxRouting(RoutingScheme):
    """Minimize max utilization, tie-breaking by total latency.

    ``k=None`` reproduces the paper's full MinMax; an integer ``k`` is the
    TeXCP-style restriction to the k shortest paths (the paper uses 10).
    """

    def __init__(
        self,
        k: Optional[int] = None,
        cache: Optional[KspCache] = None,
        initial_k: int = 4,
        grow_step: int = 4,
        max_paths: int = 60,
        max_iterations: int = 30,
        utilization_tolerance: float = 1e-3,
        stretch_bound: Optional[float] = None,
        approx_gap: Optional[float] = None,
        approx_max_iterations: int = 300,
    ) -> None:
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k is not None and stretch_bound is not None:
            raise ValueError("k and stretch_bound are mutually exclusive")
        if stretch_bound is not None and stretch_bound < 1.0:
            raise ValueError(
                f"stretch bound must be >= 1, got {stretch_bound}"
            )
        if approx_gap is not None:
            if approx_gap <= 0:
                raise ValueError(
                    f"approx_gap must be positive, got {approx_gap}"
                )
            if k is None and stretch_bound is None:
                raise ValueError(
                    "approx_gap requires a restricted path set (k or "
                    "stretch_bound); full MinMax is exact by definition"
                )
        self.k = k
        #: The paper's §8 suggestion: instead of a fixed k, give each
        #: aggregate every path within ``stretch_bound`` times its
        #: shortest delay.  Avoids both MinMaxK's missing capacity on
        #: diverse networks and full MinMax's needless detours.
        self.stretch_bound = stretch_bound
        self._cache = cache
        self.initial_k = initial_k
        self.grow_step = grow_step
        self.max_paths = max_paths
        self.max_iterations = max_iterations
        self.utilization_tolerance = utilization_tolerance
        #: Approximate fast path: when set, the placement comes from
        #: :func:`solve_minmax_approx` with this target optimality gap
        #: (certified; see :attr:`last_certified_gap`).  Meant for fleet
        #: screening where an exact LP per variant is wasted effort.
        self.approx_gap = approx_gap
        self.approx_max_iterations = approx_max_iterations
        if k is not None:
            self.name = f"MinMaxK{k}"
        elif stretch_bound is not None:
            self.name = f"MinMaxS{stretch_bound:g}"
        else:
            self.name = "MinMax"
        if approx_gap is not None:
            # Approximate placements differ from exact ones, so the name
            # (and therefore every result-store stream) must too.
            self.name += f"~{approx_gap:g}"
        #: Maximum utilization achieved by the last placement.
        self.last_max_utilization: Optional[float] = None
        #: Certified (upper-lower)/lower gap of the last approximate
        #: placement; ``None`` after exact solves.
        self.last_certified_gap: Optional[float] = None
        #: (lower, upper) bounds bracketing the optimal Umax of the last
        #: approximate placement; ``None`` after exact solves.
        self.last_utilization_bounds: Optional[Tuple[float, float]] = None

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        if self._cache is not None and self._cache.network is network:
            cache = self._cache
        else:
            cache = KspCache(network)
        aggregates = tm.aggregates()
        if not aggregates:
            raise ValueError("traffic matrix has no aggregates to route")

        path_sets: Optional[Dict[Aggregate, List[Path]]]
        if self.k is not None:
            path_sets = {
                agg: list(cache.get(agg.src, agg.dst, self.k)) for agg in aggregates
            }
        elif self.stretch_bound is not None:
            path_sets = {
                agg: self._paths_within_stretch(cache, agg)
                for agg in aggregates
            }
        else:
            path_sets = None

        self.last_certified_gap = None
        self.last_utilization_bounds = None
        if path_sets is None:
            result, umax = self._solve_full(network, tm, cache, aggregates)
        elif self.approx_gap is not None:
            approx, umax = solve_minmax_approx(
                network, path_sets,
                target_gap=self.approx_gap,
                max_iterations=self.approx_max_iterations,
            )
            self.last_certified_gap = approx.certified_gap
            self.last_utilization_bounds = (
                approx.utilization_lower_bound,
                approx.utilization_upper_bound,
            )
            result = approx
        else:
            result, umax = solve_minmax_lp(network, path_sets)
        self.last_max_utilization = umax

        allocations = normalize_allocations(result.fractions)
        unplaced: Dict[Aggregate, float] = {}
        if umax > 1.0 + 1e-6:
            # The k-restricted variant can genuinely fail to fit traffic;
            # charge the excess to aggregates crossing saturated links.
            from repro.net.paths import path_links

            overloaded = {
                key for key, value in result.link_overload.items() if value > 1.0 + 1e-6
            }
            for agg, splits in result.fractions.items():
                fraction_over = sum(
                    fraction
                    for path, fraction in splits
                    if fraction > 1e-9
                    and any(key in overloaded for key in path_links(path))
                )
                if fraction_over > 0:
                    unplaced[agg] = (
                        agg.demand_bps * fraction_over * (umax - 1.0) / umax
                    )
        return Placement(network, allocations, unplaced_bps=unplaced)

    def _paths_within_stretch(self, cache: KspCache, agg: Aggregate) -> List[Path]:
        """All k-shortest paths whose delay is within the stretch bound.

        Grown lazily: Yen yields paths in non-decreasing delay, so we stop
        at the first path over the bound (or at ``max_paths``).
        """
        from repro.net.paths import path_delay_s

        if self.stretch_bound is None:
            raise RuntimeError(
                "_paths_within_stretch requires a stretch_bound; "
                "the k/stretch dispatch in place() is out of sync"
            )
        network = cache.network
        shortest = cache.shortest(agg.src, agg.dst)
        budget = path_delay_s(network, shortest) * self.stretch_bound
        selected: List[Path] = []
        k = 1
        while k <= self.max_paths:
            paths = cache.get(agg.src, agg.dst, k)
            if len(paths) < k:
                break  # pair exhausted
            candidate = paths[k - 1]
            if path_delay_s(network, candidate) > budget + 1e-12:
                break
            selected.append(candidate)
            k += 1
        return selected or [shortest]

    def _solve_full(
        self,
        network: Network,
        tm: TrafficMatrix,
        cache: KspCache,
        aggregates: List[Aggregate],
    ):
        """Reach the exact MinMax utilization via MCF-decomposed paths.

        Path sets start from the k shortest paths (so the latency
        tie-break has low-delay options) plus the paths of a decomposed
        optimal MinMax flow (so the stage-1 optimum is achievable by
        construction).  If numerics leave a residual gap, the iterative
        growth loop below closes it.
        """
        target, seeds = mcf_seed_paths(network, tm)
        path_sets: Dict[Aggregate, List[Path]] = {}
        target_counts: Dict[Aggregate, int] = {}
        for agg in aggregates:
            path_sets[agg] = list(cache.get(agg.src, agg.dst, self.initial_k))
            target_counts[agg] = self.initial_k
            for path in seeds.get(agg.pair, []):
                if path not in path_sets[agg]:
                    path_sets[agg].append(path)

        result, umax = solve_minmax_lp(network, path_sets)
        rounds_without_progress = 0
        for _ in range(self.max_iterations):
            if umax <= target * (1.0 + self.utilization_tolerance) + 1e-9:
                break
            hottest = [
                key
                for key, value in result.link_overload.items()
                if value >= max(1.0, umax) * (1.0 - 1e-6)
            ]
            crossing = aggregates_crossing(result, path_sets, hottest)
            grew = grow_path_sets(
                cache, path_sets, target_counts, crossing,
                self.grow_step, self.max_paths,
            )
            grew |= add_detour_paths(network, path_sets, crossing, hottest)
            if not grew:
                # Escalate: grow everyone (utilization may be blocked by
                # aggregates away from the hottest link).
                grew = grow_path_sets(
                    cache, path_sets, target_counts, aggregates,
                    self.grow_step, self.max_paths,
                )
                if not grew:
                    break
            previous = umax
            result, umax = solve_minmax_lp(network, path_sets)
            if umax >= previous * (1.0 - 1e-6):
                rounds_without_progress += 1
                if rounds_without_progress >= 3:
                    break
            else:
                rounds_without_progress = 0
        return result, umax

"""Routing schemes studied by the paper.

All schemes implement :class:`repro.routing.base.RoutingScheme` and return a
:class:`repro.routing.base.Placement` mapping each traffic aggregate to a
set of (path, fraction) splits:

* :class:`repro.routing.shortest_path.ShortestPathRouting` — OSPF/IS-IS
  style with delay-proportional costs;
* :class:`repro.routing.b4.B4Routing` — greedy progressive filling over the
  k-shortest paths, as in Google's B4 (and, per the paper, MPLS-TE
  auto-bandwidth behaves alike);
* :class:`repro.routing.minmax.MinMaxRouting` — minimize the maximum link
  utilization with a latency tie-break (TeXCP/MATE-style), either over all
  paths or over the k shortest ("MinMax K=10");
* :class:`repro.routing.optimal.LatencyOptimalRouting` — the paper's
  latency-optimal LP (its Figure 12) solved by iterative path-set growth
  (its Figure 13); with headroom and the multiplexing loop on top it
  becomes LDR (:mod:`repro.core.ldr`);
* :class:`repro.routing.linkbased.LinkBasedOptimalRouting` — the same
  optimization as a per-aggregate link-based multi-commodity flow, the slow
  baseline of the paper's Figure 15.
"""

from repro.routing.base import Placement, RoutingScheme
from repro.routing.shortest_path import ShortestPathRouting
from repro.routing.ecmp import EcmpRouting
from repro.routing.mplste import MplsTeRouting
from repro.routing.b4 import B4Routing
from repro.routing.minmax import MinMaxRouting
from repro.routing.optimal import LatencyOptimalRouting
from repro.routing.linkbased import LinkBasedOptimalRouting

__all__ = [
    "Placement",
    "RoutingScheme",
    "ShortestPathRouting",
    "EcmpRouting",
    "MplsTeRouting",
    "B4Routing",
    "MinMaxRouting",
    "LatencyOptimalRouting",
    "LinkBasedOptimalRouting",
]

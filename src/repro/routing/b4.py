"""B4-style greedy traffic placement (paper §3).

"B4 starts by incrementally placing traffic from each aggregate onto its
shortest path.  This is done in parallel for all aggregates.  When an
aggregate's shortest path fills up, B4 starts allocating that aggregate
onto the next shortest path, and so forth.  Hence, while it considers
low-latency paths first, B4 still uses a greedy algorithm."

We implement that as synchronous water-filling: at every step each active
aggregate pushes rate onto its current preferred path at an equal rate, the
step size being the largest uniform increment before some link saturates or
some aggregate completes.  When a link saturates, aggregates preferring a
path through it advance to their next shortest path with residual capacity
everywhere.  An aggregate that runs out of usable paths keeps its leftover
demand, which is force-placed on its shortest path — this models the
congestion the paper observes B4 inducing on high-LLPD networks (its
Figure 5 trap).

With ``headroom > 0`` the water-filling works against capacities scaled by
``1 - headroom``; leftover demand then gets a second pass against the full
capacities — the paper's observation that headroom lets B4 fit traffic it
otherwise could not, by eating into the reserve (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.graph import Network
from repro.net.paths import KspCache, Path, path_links
from repro.routing.base import PathAllocation, Placement, RoutingScheme
from repro.tm.matrix import Aggregate, TrafficMatrix

# Stop allocating below this rate: avoids infinitesimal water-filling steps.
RATE_EPSILON_BPS = 1.0


@dataclass
class _AggregateState:
    """Book-keeping for one aggregate during water-filling."""

    aggregate: Aggregate
    remaining_bps: float
    #: Allocated rate per path (paths are added as the aggregate advances).
    placed: Dict[Path, float] = field(default_factory=dict)
    #: Index of the next k-shortest path to try.
    next_path_rank: int = 0
    current_path: Optional[Path] = None
    exhausted: bool = False


class B4Routing(RoutingScheme):
    """Greedy progressive filling over k-shortest paths."""

    name = "B4"

    def __init__(
        self,
        headroom: float = 0.0,
        max_paths_per_aggregate: int = 25,
        cache: Optional[KspCache] = None,
    ) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        self.headroom = headroom
        self.max_paths_per_aggregate = max_paths_per_aggregate
        self._cache = cache
        if headroom > 0:
            self.name = f"B4(h={headroom:.0%})"

    # ------------------------------------------------------------------
    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        if self._cache is not None and self._cache.network is network:
            cache = self._cache
        else:
            cache = KspCache(network)

        residual = {
            link.key: link.capacity_bps * (1.0 - self.headroom)
            for link in network.links()
        }
        states = [
            _AggregateState(agg, agg.demand_bps) for agg in tm.aggregates()
        ]
        self._waterfill(states, residual, cache)

        if self.headroom > 0:
            # Second pass: leftover traffic may eat into the reserved
            # headroom (residuals measured against full capacity).
            leftovers = [s for s in states if s.remaining_bps > RATE_EPSILON_BPS]
            if leftovers:
                full_residual = {
                    link.key: link.capacity_bps for link in network.links()
                }
                for key, value in residual.items():
                    used = (
                        network.link(*key).capacity_bps * (1.0 - self.headroom)
                        - value
                    )
                    full_residual[key] -= used
                for state in leftovers:
                    state.exhausted = False
                    state.next_path_rank = 0
                    state.current_path = None
                self._waterfill(leftovers, full_residual, cache)

        # Whatever remains cannot fit: force it onto the shortest path and
        # record it so congestion metrics can see it.
        allocations: Dict[Aggregate, List[PathAllocation]] = {}
        unplaced: Dict[Aggregate, float] = {}
        for state in states:
            agg = state.aggregate
            placed = dict(state.placed)
            if state.remaining_bps > RATE_EPSILON_BPS:
                shortest = cache.shortest(agg.src, agg.dst)
                placed[shortest] = placed.get(shortest, 0.0) + state.remaining_bps
                unplaced[agg] = state.remaining_bps
            total = sum(placed.values())
            if total <= 0:
                shortest = cache.shortest(agg.src, agg.dst)
                placed = {shortest: agg.demand_bps}
                total = agg.demand_bps
                unplaced[agg] = agg.demand_bps
            allocations[agg] = [
                PathAllocation(path, rate / total)
                for path, rate in placed.items()
                if rate > 0.0
            ]
        return Placement(network, allocations, unplaced_bps=unplaced)

    # ------------------------------------------------------------------
    def _waterfill(
        self,
        states: List[_AggregateState],
        residual: Dict[Tuple[str, str], float],
        cache: KspCache,
    ) -> None:
        """Fill paths synchronously until demands are met or paths run out."""
        for state in states:
            self._advance(state, residual, cache)

        while True:
            active = [
                s
                for s in states
                if not s.exhausted and s.remaining_bps > RATE_EPSILON_BPS
            ]
            if not active:
                return

            # Count how many active aggregates currently traverse each link.
            users: Dict[Tuple[str, str], int] = {}
            for state in active:
                if state.current_path is None:
                    raise RuntimeError(
                        "active aggregate lost its current path; _advance "
                        "must run before each water-filling step"
                    )
                for key in path_links(state.current_path):
                    users[key] = users.get(key, 0) + 1

            # Largest uniform increment before a link fills or an
            # aggregate's demand completes.
            step = min(s.remaining_bps for s in active)
            for key, count in users.items():
                step = min(step, residual[key] / count)

            if step > RATE_EPSILON_BPS:
                for state in active:
                    path = state.current_path
                    if path is None:
                        raise RuntimeError(
                            "active aggregate lost its current path "
                            "mid-step; the users census above requires one"
                        )
                    state.placed[path] = state.placed.get(path, 0.0) + step
                    state.remaining_bps -= step
                    for key in path_links(path):
                        residual[key] -= step

            # Advance any aggregate whose preferred path just saturated.
            advanced_any = False
            for state in active:
                if state.remaining_bps <= RATE_EPSILON_BPS:
                    continue
                path = state.current_path
                if path is None:
                    raise RuntimeError(
                        "active aggregate lost its current path after "
                        "filling; saturation can only advance, not clear it"
                    )
                if any(residual[key] <= RATE_EPSILON_BPS for key in path_links(path)):
                    self._advance(state, residual, cache)
                    advanced_any = True

            if step <= RATE_EPSILON_BPS and not advanced_any:
                # Numerical corner: many users share a nearly-empty link so
                # the uniform step underflows without any single residual
                # dropping below epsilon.  Force the users of the tightest
                # link to advance so the loop always makes progress.
                tightest = min(users, key=lambda key: residual[key] / users[key])
                for state in active:
                    if state.remaining_bps <= RATE_EPSILON_BPS:
                        continue
                    path = state.current_path
                    if path is not None and tightest in path_links(path):
                        self._advance(state, residual, cache)

    def _advance(
        self,
        state: _AggregateState,
        residual: Dict[Tuple[str, str], float],
        cache: KspCache,
    ) -> None:
        """Move to the next shortest path with residual capacity everywhere."""
        agg = state.aggregate
        while state.next_path_rank < self.max_paths_per_aggregate:
            rank = state.next_path_rank
            paths = cache.get(agg.src, agg.dst, rank + 1)
            if len(paths) <= rank:
                break  # no more simple paths exist
            state.next_path_rank += 1
            candidate = paths[rank]
            if all(
                residual[key] > RATE_EPSILON_BPS for key in path_links(candidate)
            ):
                state.current_path = candidate
                return
        state.current_path = None
        state.exhausted = True

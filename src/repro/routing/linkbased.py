"""Link-based (node-arc) formulation of the latency optimization.

The paper contrasts its path-based iterative approach with "a
multi-commodity flow problem, with one commodity per aggregate, in the
spirit of Bertsekas et al.  However, the size of this optimization model
scales with the product of number of aggregates and number of links, hence
this approach may quickly become impractical" — and its Figure 15 measures
it to be about two orders of magnitude slower.  This module is that
baseline: same objective layers as Figure 12, but with per-aggregate,
per-link flow variables instead of path-fraction variables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.lp import LinearProgram
from repro.net.graph import Network
from repro.net.paths import shortest_path_delays
from repro.routing.base import Placement, RoutingScheme, normalize_allocations
from repro.routing.decompose import decompose_flow
from repro.routing.pathlp import (
    M1_TIEBREAK,
    M2_MAX_OVERLOAD,
    M3_TOTAL_OVERLOAD,
)
from repro.tm.matrix import Aggregate, TrafficMatrix


class LinkBasedOptimalRouting(RoutingScheme):
    """Latency-optimal placement via one monolithic node-arc LP."""

    name = "LinkBasedOptimal"

    def __init__(self, headroom: float = 0.0) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        self.headroom = headroom

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        routed = (
            network.with_capacity_factor(1.0 - self.headroom)
            if self.headroom > 0
            else network
        )
        aggregates = tm.aggregates()
        if not aggregates:
            raise ValueError("traffic matrix has no aggregates to route")
        links = list(routed.links())
        capacity_unit = sum(link.capacity_bps for link in links) / len(links)
        total_flows = sum(agg.n_flows for agg in aggregates)

        shortest: Dict[str, Dict[str, float]] = {}
        for agg in aggregates:
            if agg.src not in shortest:
                shortest[agg.src] = shortest_path_delays(routed, agg.src)
        delay_unit = (
            sum(
                agg.n_flows * shortest[agg.src][agg.dst] for agg in aggregates
            )
            / total_flows
        )
        if delay_unit <= 0:
            delay_unit = 1e-3

        # Column layout: flow variables aggregate-major (``ai * L + li``),
        # then Omax, then one O_l per link — the same order the scalar
        # assembly produced, so solutions are bit-identical.
        n_aggs = len(aggregates)
        n_links = len(links)
        node_names = list(routed.node_names)
        n_nodes = len(node_names)
        node_pos = {name: ni for ni, name in enumerate(node_names)}
        agg_index = np.arange(n_aggs, dtype=np.int64)
        link_index = np.arange(n_links, dtype=np.int64)
        demand_units = (
            np.fromiter(
                (agg.demand_bps for agg in aggregates),
                dtype=np.float64, count=n_aggs,
            )
            / capacity_unit
        )

        lp = LinearProgram()
        flow_start = lp.add_variables(n_aggs * n_links)

        # Conservation per aggregate and node, in capacity units: build the
        # one-aggregate incidence pattern once (each link leaves its src row
        # with +1 and enters its dst row with -1), then tile with row/column
        # offsets per aggregate.
        src_pos = np.fromiter(
            (node_pos[link.src] for link in links),
            dtype=np.int64, count=n_links,
        )
        dst_pos = np.fromiter(
            (node_pos[link.dst] for link in links),
            dtype=np.int64, count=n_links,
        )
        base_rows = np.concatenate([src_pos, dst_pos])
        base_cols = np.concatenate([link_index, link_index])
        base_data = np.concatenate([np.ones(n_links), -np.ones(n_links)])
        cons_rows = (base_rows[None, :] + agg_index[:, None] * n_nodes).ravel()
        cons_cols = (base_cols[None, :] + agg_index[:, None] * n_links).ravel()
        cons_data = np.tile(base_data, n_aggs)
        cons_rhs = np.zeros(n_aggs * n_nodes)
        agg_src = np.fromiter(
            (node_pos[agg.src] for agg in aggregates),
            dtype=np.int64, count=n_aggs,
        )
        agg_dst = np.fromiter(
            (node_pos[agg.dst] for agg in aggregates),
            dtype=np.int64, count=n_aggs,
        )
        cons_rhs[agg_index * n_nodes + agg_src] = demand_units
        cons_rhs[agg_index * n_nodes + agg_dst] = -demand_units
        lp.add_rows(cons_data, cons_rows, cons_cols, "==", cons_rhs)

        # Capacity with overload variables, as in Figure 12: per link one
        # capacity row (all aggregates' flows minus O_l * capacity) and one
        # O_l <= Omax row, interleaved.
        omax = lp.variable("Omax", lower=1.0)
        o_start = lp.add_variables(n_links, lower=1.0)
        capacities = np.fromiter(
            (link.capacity_bps for link in links),
            dtype=np.float64, count=n_links,
        )
        cap_rows = np.concatenate([
            np.repeat(2 * link_index, n_aggs),
            2 * link_index,
            2 * link_index + 1,
            2 * link_index + 1,
        ])
        cap_cols = np.concatenate([
            (link_index[:, None] + agg_index[None, :] * n_links).ravel()
            + flow_start,
            o_start + link_index,
            o_start + link_index,
            np.full(n_links, omax.index, dtype=np.int64),
        ])
        cap_data = np.concatenate([
            np.ones(n_aggs * n_links),
            (-capacities) / capacity_unit,
            np.ones(n_links),
            -np.ones(n_links),
        ])
        lp.add_rows(
            cap_data, cap_rows, cap_cols, "<=", np.zeros(2 * n_links)
        )

        # Objective: delay (with the RTT tie-break), then overload layers.
        # sum_l f_al * d_l / B_a  ==  flow-fraction-weighted path delay.
        # The elementwise operation order matches the scalar loop exactly.
        weight = (
            np.fromiter(
                (agg.n_flows for agg in aggregates),
                dtype=np.float64, count=n_aggs,
            )
            / total_flows
        )
        shortest_delay = np.fromiter(
            (max(shortest[agg.src][agg.dst], 1e-9) for agg in aggregates),
            dtype=np.float64, count=n_aggs,
        )
        delay = (
            np.fromiter(
                (link.delay_s for link in links),
                dtype=np.float64, count=n_links,
            )
            / delay_unit
        )
        coefficient = weight[:, None] * delay[None, :]
        coefficient = coefficient / demand_units[:, None]
        coefficient = coefficient * (
            1.0 + M1_TIEBREAK * (delay_unit / shortest_delay)
        )[:, None]
        c = np.zeros(lp.num_variables)
        c[flow_start:flow_start + n_aggs * n_links] = coefficient.ravel()
        c[omax.index] = M2_MAX_OVERLOAD
        c[o_start:o_start + n_links] = M3_TOTAL_OVERLOAD
        lp.minimize_coefficients(c)

        solution = lp.solve()
        values = solution.x

        raw: Dict[Aggregate, List[Tuple[tuple, float]]] = {}
        unplaced: Dict[Aggregate, float] = {}
        for ai, agg in enumerate(aggregates):
            flow_values = (
                values[flow_start + ai * n_links:
                       flow_start + (ai + 1) * n_links]
                * capacity_unit
            ).tolist()
            link_flow = {
                link.key: flow_values[li] for li, link in enumerate(links)
            }
            splits = decompose_flow(
                routed, agg.src, agg.dst, link_flow, agg.demand_bps
            )
            if not splits:
                raise RuntimeError(
                    f"decomposition failed for {agg.src}->{agg.dst}"
                )
            raw[agg] = splits
        allocations = normalize_allocations(raw)
        max_overload = solution.value(omax)
        if max_overload > 1.0 + 1e-6:
            from repro.net.paths import path_links

            o_values = values[o_start:o_start + n_links]
            overloaded = {
                links[li].key
                for li in range(n_links)
                if o_values[li] > 1.0 + 1e-6
            }
            for agg, splits in raw.items():
                fraction_over = sum(
                    fraction
                    for path, fraction in splits
                    if any(key in overloaded for key in path_links(path))
                )
                if fraction_over > 0:
                    unplaced[agg] = (
                        agg.demand_bps
                        * fraction_over
                        * (max_overload - 1.0)
                        / max_overload
                    )
        return Placement(network, allocations, unplaced_bps=unplaced)

"""Link-based (node-arc) formulation of the latency optimization.

The paper contrasts its path-based iterative approach with "a
multi-commodity flow problem, with one commodity per aggregate, in the
spirit of Bertsekas et al.  However, the size of this optimization model
scales with the product of number of aggregates and number of links, hence
this approach may quickly become impractical" — and its Figure 15 measures
it to be about two orders of magnitude slower.  This module is that
baseline: same objective layers as Figure 12, but with per-aggregate,
per-link flow variables instead of path-fraction variables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lp import LinearProgram, LinExpr, Variable
from repro.net.graph import Network
from repro.net.paths import shortest_path_delays
from repro.routing.base import Placement, RoutingScheme, normalize_allocations
from repro.routing.decompose import decompose_flow
from repro.routing.pathlp import (
    M1_TIEBREAK,
    M2_MAX_OVERLOAD,
    M3_TOTAL_OVERLOAD,
)
from repro.tm.matrix import Aggregate, TrafficMatrix


class LinkBasedOptimalRouting(RoutingScheme):
    """Latency-optimal placement via one monolithic node-arc LP."""

    name = "LinkBasedOptimal"

    def __init__(self, headroom: float = 0.0) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        self.headroom = headroom

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        routed = (
            network.with_capacity_factor(1.0 - self.headroom)
            if self.headroom > 0
            else network
        )
        aggregates = tm.aggregates()
        if not aggregates:
            raise ValueError("traffic matrix has no aggregates to route")
        links = list(routed.links())
        capacity_unit = sum(link.capacity_bps for link in links) / len(links)
        total_flows = sum(agg.n_flows for agg in aggregates)

        shortest: Dict[str, Dict[str, float]] = {}
        for agg in aggregates:
            if agg.src not in shortest:
                shortest[agg.src] = shortest_path_delays(routed, agg.src)
        delay_unit = (
            sum(
                agg.n_flows * shortest[agg.src][agg.dst] for agg in aggregates
            )
            / total_flows
        )
        if delay_unit <= 0:
            delay_unit = 1e-3

        lp = LinearProgram()
        flow: Dict[Tuple[int, Tuple[str, str]], Variable] = {}
        for ai, agg in enumerate(aggregates):
            for link in links:
                flow[(ai, link.key)] = lp.variable(f"f[{ai},{link.src}->{link.dst}]")

        # Conservation per aggregate and node, in capacity units.
        for ai, agg in enumerate(aggregates):
            demand_units = agg.demand_bps / capacity_unit
            for node in routed.node_names:
                expr = LinExpr()
                for link in routed.out_links(node):
                    expr.add_term(flow[(ai, link.key)], 1.0)
                for link in routed.in_links(node):
                    expr.add_term(flow[(ai, link.key)], -1.0)
                if node == agg.src:
                    rhs = demand_units
                elif node == agg.dst:
                    rhs = -demand_units
                else:
                    rhs = 0.0
                lp.add_constraint(expr, "==", rhs)

        # Capacity with overload variables, as in Figure 12.
        omax = lp.variable("Omax", lower=1.0)
        overload: Dict[Tuple[str, str], Variable] = {}
        for link in links:
            o_l = lp.variable(f"O[{link.src}->{link.dst}]", lower=1.0)
            overload[link.key] = o_l
            expr = LinExpr()
            for ai in range(len(aggregates)):
                expr.add_term(flow[(ai, link.key)], 1.0)
            expr.add_term(o_l, -link.capacity_bps / capacity_unit)
            lp.add_constraint(expr, "<=", 0.0)
            bound = LinExpr({o_l: 1.0})
            bound.add_term(omax, -1.0)
            lp.add_constraint(bound, "<=", 0.0)

        # Objective: delay (with the RTT tie-break), then overload layers.
        objective = LinExpr()
        for ai, agg in enumerate(aggregates):
            weight = agg.n_flows / total_flows
            shortest_delay = max(shortest[agg.src][agg.dst], 1e-9)
            demand_units = agg.demand_bps / capacity_unit
            # sum_l f_al * d_l / B_a  ==  flow-fraction-weighted path delay.
            for link in links:
                delay = link.delay_s / delay_unit
                coefficient = weight * delay / demand_units
                coefficient *= 1.0 + M1_TIEBREAK * (delay_unit / shortest_delay)
                objective.add_term(flow[(ai, link.key)], coefficient)
        objective.add_term(omax, M2_MAX_OVERLOAD)
        for o_l in overload.values():
            objective.add_term(o_l, M3_TOTAL_OVERLOAD)
        lp.minimize(objective)

        solution = lp.solve()

        raw: Dict[Aggregate, List[Tuple[tuple, float]]] = {}
        unplaced: Dict[Aggregate, float] = {}
        for ai, agg in enumerate(aggregates):
            link_flow = {
                link.key: solution.value(flow[(ai, link.key)]) * capacity_unit
                for link in links
            }
            splits = decompose_flow(
                routed, agg.src, agg.dst, link_flow, agg.demand_bps
            )
            if not splits:
                raise RuntimeError(
                    f"decomposition failed for {agg.src}->{agg.dst}"
                )
            raw[agg] = splits
        allocations = normalize_allocations(raw)
        max_overload = solution.value(omax)
        if max_overload > 1.0 + 1e-6:
            from repro.net.paths import path_links

            overloaded = {
                key
                for key, var in overload.items()
                if solution.value(var) > 1.0 + 1e-6
            }
            for agg, splits in raw.items():
                fraction_over = sum(
                    fraction
                    for path, fraction in splits
                    if any(key in overloaded for key in path_links(path))
                )
                if fraction_over > 0:
                    unplaced[agg] = (
                        agg.demand_bps
                        * fraction_over
                        * (max_overload - 1.0)
                        / max_overload
                    )
        return Placement(network, allocations, unplaced_bps=unplaced)

"""ECMP shortest-path routing.

The deployed variant of the paper's shortest-path baseline: OSPF/IS-IS
with equal-cost multipath splits traffic evenly across all minimum-delay
paths.  On topologies with parallel equal-delay routes this spreads load
that plain SP would concentrate — but like SP it remains load-oblivious,
so it exhibits the same Figure 3 pathology wherever the tied paths share a
bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.graph import Network
from repro.net.paths import KspCache, Path, path_delay_s
from repro.routing.base import PathAllocation, Placement, RoutingScheme
from repro.tm.matrix import Aggregate, TrafficMatrix

#: Paths within this relative delay of the minimum count as "equal cost".
ECMP_DELAY_TOLERANCE = 1e-9


def equal_cost_paths(
    cache: KspCache, src: str, dst: str, max_paths: int = 16
) -> List[Path]:
    """All minimum-delay paths between a pair (up to ``max_paths``)."""
    paths = cache.get(src, dst, max_paths)
    if not paths:
        from repro.net.paths import NoPathError

        raise NoPathError(f"no path {src} -> {dst}")
    network = cache.network
    best = path_delay_s(network, paths[0])
    threshold = best * (1.0 + ECMP_DELAY_TOLERANCE) + 1e-15
    return [p for p in paths if path_delay_s(network, p) <= threshold]


class EcmpRouting(RoutingScheme):
    """Split each aggregate evenly over its equal-cost shortest paths."""

    name = "ECMP"

    def __init__(
        self, cache: Optional[KspCache] = None, max_paths: int = 16
    ) -> None:
        self._cache = cache
        self.max_paths = max_paths

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        if self._cache is not None and self._cache.network is network:
            cache = self._cache
        else:
            cache = KspCache(network)
        allocations: Dict[Aggregate, List[PathAllocation]] = {}
        for agg in tm.aggregates():
            paths = equal_cost_paths(cache, agg.src, agg.dst, self.max_paths)
            fraction = 1.0 / len(paths)
            allocations[agg] = [
                PathAllocation(path, fraction) for path in paths
            ]
        return Placement(network, allocations)

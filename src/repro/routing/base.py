"""Common types for routing schemes: placements and their metrics.

A :class:`Placement` is the output of every scheme: for each aggregate, a
list of paths with the fraction of the aggregate's traffic carried on each.
All of the paper's evaluation metrics — fraction of congested pairs, total
latency stretch, maximum path stretch, link utilization CDFs — are methods
here, computed against the *real* network capacities (schemes that reserve
headroom route on scaled-down capacities but are judged on the truth).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.graph import Network
from repro.net.paths import Path, path_delay_s, path_links, shortest_path_delays
from repro.tm.matrix import Aggregate, TrafficMatrix

# A link is "saturated" when loaded beyond capacity by more than this
# relative tolerance.  LP solutions routinely land exactly on capacity;
# that is full, not congested.
SATURATION_TOLERANCE = 1e-4


@dataclass
class PathAllocation:
    """One path used by an aggregate and the traffic fraction on it."""

    path: Path
    fraction: float


class Placement:
    """A complete traffic placement: every aggregate split across paths."""

    def __init__(
        self,
        network: Network,
        allocations: Mapping[Aggregate, Sequence[PathAllocation]],
        unplaced_bps: Optional[Mapping[Aggregate, float]] = None,
    ) -> None:
        self.network = network
        self._allocations: Dict[Aggregate, List[PathAllocation]] = {
            agg: list(allocs) for agg, allocs in allocations.items()
        }
        # Demand a scheme failed to fit anywhere (B4 and MinMaxK can fail);
        # by convention this residual rides the aggregate's shortest path
        # and is already reflected in the allocations, but we keep the
        # amount so "could not fit the traffic" cases are identifiable.
        self.unplaced_bps: Dict[Aggregate, float] = dict(unplaced_bps or {})
        self._validate()
        self._link_loads: Optional[Dict[Tuple[str, str], float]] = None

    def _validate(self) -> None:
        for agg, allocs in self._allocations.items():
            total = sum(alloc.fraction for alloc in allocs)
            if allocs and not 0.99 <= total <= 1.01:
                raise ValueError(
                    f"aggregate {agg.src}->{agg.dst}: fractions sum to {total:.4f}"
                )
            for alloc in allocs:
                if alloc.path[0] != agg.src or alloc.path[-1] != agg.dst:
                    raise ValueError(
                        f"aggregate {agg.src}->{agg.dst} assigned path "
                        f"{'-'.join(alloc.path)}"
                    )

    # ------------------------------------------------------------------
    # Raw structure
    # ------------------------------------------------------------------
    @property
    def aggregates(self) -> List[Aggregate]:
        return list(self._allocations)

    def paths_for(self, aggregate: Aggregate) -> List[PathAllocation]:
        return list(self._allocations[aggregate])

    @property
    def fits_all_traffic(self) -> bool:
        """True when no demand had to be force-placed beyond capacity."""
        return not any(v > 1e-3 for v in self.unplaced_bps.values())

    # ------------------------------------------------------------------
    # Link-level metrics
    # ------------------------------------------------------------------
    def link_loads_bps(self) -> Dict[Tuple[str, str], float]:
        """Traffic on every directed link (zero-load links included)."""
        if self._link_loads is None:
            loads = {link.key: 0.0 for link in self.network.links()}
            for agg, allocs in self._allocations.items():
                for alloc in allocs:
                    rate = agg.demand_bps * alloc.fraction
                    for key in path_links(alloc.path):
                        loads[key] += rate
            self._link_loads = loads
        return dict(self._link_loads)

    def link_utilizations(self) -> Dict[Tuple[str, str], float]:
        return {
            key: load / self.network.link(*key).capacity_bps
            for key, load in self.link_loads_bps().items()
        }

    def max_utilization(self) -> float:
        utilizations = self.link_utilizations()
        return max(utilizations.values()) if utilizations else 0.0

    def saturated_links(self) -> List[Tuple[str, str]]:
        """Directed links loaded strictly beyond capacity (congested)."""
        return [
            key
            for key, utilization in self.link_utilizations().items()
            if utilization > 1.0 + SATURATION_TOLERANCE
        ]

    # ------------------------------------------------------------------
    # Pair-level metrics (the paper's evaluation quantities)
    # ------------------------------------------------------------------
    def congested_pair_fraction(self) -> float:
        """Fraction of aggregates whose traffic crosses a saturated link.

        This is the paper's "fraction of pairs congested" (Figures 3, 4 and
        19): a source-destination pair counts as congested if any of its
        traffic is routed across a link loaded beyond capacity.
        """
        if not self._allocations:
            return 0.0
        saturated = set(self.saturated_links())
        if not saturated:
            return 0.0
        congested = 0
        for agg, allocs in self._allocations.items():
            crosses = any(
                key in saturated
                for alloc in allocs
                if alloc.fraction > 1e-9
                for key in path_links(alloc.path)
            )
            if crosses:
                congested += 1
        return congested / len(self._allocations)

    def _shortest_delays(self) -> Dict[Aggregate, float]:
        by_source: Dict[str, Dict[str, float]] = {}
        delays: Dict[Aggregate, float] = {}
        for agg in self._allocations:
            if agg.src not in by_source:
                by_source[agg.src] = shortest_path_delays(self.network, agg.src)
            delays[agg] = by_source[agg.src][agg.dst]
        return delays

    def total_latency_stretch(self) -> float:
        """Flow-weighted delay relative to shortest paths.

        The paper's latency stretch: ``sum_f d_f / sum_f d_f,sp`` where the
        sums run over flows (we weight each aggregate by its flow count and
        split fractions).
        """
        shortest = self._shortest_delays()
        actual_total = 0.0
        shortest_total = 0.0
        for agg, allocs in self._allocations.items():
            mean_delay = sum(
                alloc.fraction * path_delay_s(self.network, alloc.path)
                for alloc in allocs
            )
            actual_total += agg.n_flows * mean_delay
            shortest_total += agg.n_flows * shortest[agg]
        if shortest_total == 0.0:
            return 1.0
        return actual_total / shortest_total

    def total_weighted_delay_s(self) -> float:
        """Flow-weighted total propagation delay (the stretch numerator).

        Unlike stretch this is not normalized by shortest-path delays, so
        it is comparable across topology variants whose shortest paths
        differ — the right quantity for before/after growth studies.
        """
        total = 0.0
        for agg, allocs in self._allocations.items():
            mean_delay = sum(
                alloc.fraction * path_delay_s(self.network, alloc.path)
                for alloc in allocs
            )
            total += agg.n_flows * mean_delay
        return total

    def per_aggregate_stretch(self) -> Dict[Aggregate, float]:
        """Mean delay stretch of each aggregate (1.0 = on shortest path)."""
        shortest = self._shortest_delays()
        stretches = {}
        for agg, allocs in self._allocations.items():
            mean_delay = sum(
                alloc.fraction * path_delay_s(self.network, alloc.path)
                for alloc in allocs
            )
            stretches[agg] = mean_delay / shortest[agg] if shortest[agg] > 0 else 1.0
        return stretches

    def max_path_stretch(self) -> float:
        """Worst stretch of any used path over its pair's shortest delay.

        The paper's Figure 16 metric ("maximum path stretch"): the largest
        ``d_p / d_sp`` over all (aggregate, used path) combinations.
        """
        shortest = self._shortest_delays()
        worst = 1.0
        for agg, allocs in self._allocations.items():
            if shortest[agg] <= 0:
                continue
            for alloc in allocs:
                if alloc.fraction <= 1e-6:
                    continue
                stretch = path_delay_s(self.network, alloc.path) / shortest[agg]
                worst = max(worst, stretch)
        return worst

    def __repr__(self) -> str:
        return (
            f"Placement(aggregates={len(self._allocations)}, "
            f"max_util={self.max_utilization():.3f})"
        )


class RoutingScheme(abc.ABC):
    """Interface every routing scheme implements."""

    #: Human-readable name used in benchmark output.
    name: str = "scheme"

    @abc.abstractmethod
    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        """Compute a traffic placement for the given matrix."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def normalize_allocations(
    raw: Mapping[Aggregate, Sequence[Tuple[Path, float]]],
    min_fraction: float = 1e-6,
) -> Dict[Aggregate, List[PathAllocation]]:
    """Drop numerically-zero splits and renormalize fractions to sum to 1."""
    cleaned: Dict[Aggregate, List[PathAllocation]] = {}
    for agg, splits in raw.items():
        kept = [(path, fraction) for path, fraction in splits if fraction > min_fraction]
        if not kept:
            # Keep the largest split to avoid dropping the aggregate.
            path, fraction = max(splits, key=lambda item: item[1])
            kept = [(path, max(fraction, 1.0))]
        total = sum(fraction for _, fraction in kept)
        cleaned[agg] = [
            PathAllocation(path, fraction / total) for path, fraction in kept
        ]
    return cleaned

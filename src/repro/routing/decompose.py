"""Flow decomposition: turn per-link flows into path allocations.

The link-based multi-commodity formulation yields, per aggregate, a rate on
every directed link.  Any conservative flow decomposes into at most |E|
paths (plus cycles, which an optimal LP solution never carries because they
only add delay cost).  We repeatedly extract the lowest-delay path through
the positive-flow subgraph and strip the bottleneck rate from it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.graph import Network
from repro.net.paths import NoPathError, Path, path_links, shortest_path

FLOW_EPSILON = 1e-9


def decompose_flow(
    network: Network,
    src: str,
    dst: str,
    link_flow_bps: Dict[Tuple[str, str], float],
    demand_bps: float,
) -> List[Tuple[Path, float]]:
    """Decompose one aggregate's link flows into (path, fraction) splits.

    Fractions are relative to ``demand_bps``.  Tiny residuals (LP noise)
    are discarded; the caller is expected to renormalize.
    """
    if demand_bps <= 0:
        raise ValueError(f"demand must be positive, got {demand_bps}")
    remaining = {
        key: flow for key, flow in link_flow_bps.items() if flow > FLOW_EPSILON
    }
    splits: List[Tuple[Path, float]] = []
    delivered = 0.0
    # |E| iterations suffice for any conservative flow; the +1 margin
    # absorbs epsilon effects.
    for _ in range(len(link_flow_bps) + 1):
        if delivered >= demand_bps * (1.0 - 1e-6):
            break
        subgraph = network.subgraph_with_links(remaining)
        try:
            path = shortest_path(subgraph, src, dst)
        except NoPathError:
            break
        bottleneck = min(remaining[key] for key in path_links(path))
        for key in path_links(path):
            remaining[key] -= bottleneck
            if remaining[key] <= FLOW_EPSILON:
                del remaining[key]
        splits.append((path, bottleneck / demand_bps))
        delivered += bottleneck
    return splits

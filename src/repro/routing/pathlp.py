"""Path-based LP formulations shared by the routing schemes.

This module implements the paper's Figure 12 linear program:

    min   sum_a n_a sum_{p in P_a} x_ap (d_p + d_p M1 / S_a)
            + M2 * Omax + sum_l O_l
    s.t.  sum_a sum_{p in P_a} x_ap B_a <= C_l O_l      for all links l
          1 <= O_l <= Omax                              for all links l
          sum_{p in P_a} x_ap = 1                       for all aggregates a

with the paper's priority layering: avoiding congestion dominates (M2
large), total overload is spread if congestion is unavoidable, latency is
the secondary goal, and a small M1 term tie-breaks between equal-delay
placements by preferring to move aggregates whose shortest-path RTT is
already large.

It also implements the MinMax two-stage LP (minimize maximum utilization,
then minimize latency subject to that maximum), which the paper uses as the
TeXCP/MATE-style baseline, plus an *approximate* MinMax fast path
(:func:`solve_minmax_approx`) that reports a certified optimality gap.

All quantities are normalized before hitting the solver: rates in units of
the mean link capacity and delays in units of the flow-weighted mean
shortest-path delay.  This keeps coefficient magnitudes near 1 and the
HiGHS backend numerically happy (raw bits/s coefficients provoke spurious
unbounded results).

Assembly is vectorized: a :class:`_PathSetStructure` holds the
demand-independent arrays of one (network, path-set) pair — per-path link
incidence, per-path delays, link order, normalized capacities — and is
cached in a small module-level LRU keyed by the network's content
signature plus the exact path sets.  Sweep points that reuse a path set
under different traffic matrices (figures 8/16/17, LDR's repeated rounds,
scenario fleets) skip the dominant build loops entirely; the per-solve
work is a handful of numpy operations feeding a
:class:`repro.lp.CompiledLP`.  The produced models are bit-identical to
the historical per-coefficient construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import math

import numpy as np

from repro.lp import CompiledLP, Solution
from repro.lp.model import SENSE_EQ, SENSE_LE, _recorder, resolve_backend
from repro.net.graph import Network
from repro.net.paths import Path, network_signature, path_links
from repro.tm.matrix import Aggregate

# Priority layers of the Figure 12 objective (normalized units).
M1_TIEBREAK = 1e-3
M2_MAX_OVERLOAD = 1e4
M3_TOTAL_OVERLOAD = 1e2

#: Overloads within this tolerance of 1.0 count as "fits".
OVERLOAD_TOLERANCE = 1e-5


@dataclass
class PathLpResult:
    """Outcome of one path-based LP solve."""

    fractions: Dict[Aggregate, List[Tuple[Path, float]]]
    link_overload: Dict[Tuple[str, str], float]
    max_overload: float
    objective: float

    @property
    def fits(self) -> bool:
        return self.max_overload <= 1.0 + OVERLOAD_TOLERANCE

    def overloaded_links(self, only_maximal: bool = True) -> List[Tuple[str, str]]:
        """Links with overload > 1; optionally only the maximally loaded.

        The paper's Figure 13 iteration grows paths for aggregates crossing
        links "that are maximally overloaded — i.e., such that
        Ol = Omax > 1".
        """
        if self.fits:
            return []
        if only_maximal:
            threshold = self.max_overload * (1.0 - 1e-6)
        else:
            threshold = 1.0 + OVERLOAD_TOLERANCE
        return [
            key for key, value in self.link_overload.items() if value >= threshold
        ]


@dataclass
class ApproxPathLpResult(PathLpResult):
    """A MinMax placement from the approximate fast path.

    ``utilization_lower_bound <= optimal Umax <= utilization_upper_bound``
    is a *certificate*: the lower bound comes from LP duality (any
    non-negative link weighting bounds the optimum from below), the upper
    bound is the max utilization of the returned feasible placement, so
    the reported gap holds regardless of how the heuristic converged.
    """

    utilization_lower_bound: float
    utilization_upper_bound: float
    certified_gap: float
    iterations: int


# ----------------------------------------------------------------------
# Demand-independent structure of one (network, path set) pair
# ----------------------------------------------------------------------
class _PathSetStructure:
    """Vectorized incidence arrays shared by every LP over one path set.

    Everything here depends only on the topology and the path lists —
    never on demands — so one structure serves every traffic matrix and
    both MinMax stages.
    """

    __slots__ = (
        "n_aggs", "n_paths", "n_links",
        "path_offsets", "path_counts", "agg_of_path", "path_delay",
        "shortest_delay", "entry_path", "entry_link", "entry_agg",
        "link_keys", "capacity_units", "capacity_unit",
    )

    def __init__(
        self,
        network: Network,
        aggregates: Sequence[Aggregate],
        path_lists: Sequence[Sequence[Path]],
    ) -> None:
        links = list(network.links())
        self.capacity_unit = (
            sum(link.capacity_bps for link in links) / len(links)
        )
        link_delay = {link.key: link.delay_s for link in links}
        link_index = {link.key: i for i, link in enumerate(links)}
        capacity_bps = np.fromiter(
            (link.capacity_bps for link in links),
            dtype=np.float64, count=len(links),
        )

        self.n_aggs = len(aggregates)
        counts = np.fromiter(
            (len(paths) for paths in path_lists),
            dtype=np.int64, count=self.n_aggs,
        )
        self.path_counts = counts
        self.path_offsets = np.zeros(self.n_aggs, dtype=np.int64)
        np.cumsum(counts[:-1], out=self.path_offsets[1:])
        self.n_paths = int(counts.sum())
        self.agg_of_path = np.repeat(
            np.arange(self.n_aggs, dtype=np.int64), counts
        )

        # Per-path delay and link entries, computed exactly once: this
        # loop dominates structure-build time, so it reads link
        # attributes directly instead of going through path helpers.
        # Delays are summed sequentially in link order (bit-compatible
        # with the historical per-path Python sum).
        delays: List[float] = []
        entry_path: List[int] = []
        entry_global: List[int] = []
        pi = 0
        for paths in path_lists:
            for path in paths:
                keys = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
                delays.append(sum(link_delay[k] for k in keys))
                entry_path.extend([pi] * len(keys))
                entry_global.extend(link_index[k] for k in keys)
                pi += 1
        self.path_delay = np.asarray(delays, dtype=np.float64)
        self.shortest_delay = self.path_delay[self.path_offsets]
        entry_path_arr = np.asarray(entry_path, dtype=np.int64)
        entry_global_arr = np.asarray(entry_global, dtype=np.int64)

        # Model link order = first-touch order of the (aggregate, path,
        # link-in-path) traversal, matching the historical
        # ``load_exprs.setdefault`` insertion order.
        unique, first_pos = np.unique(entry_global_arr, return_index=True)
        touch_order = np.argsort(first_pos, kind="stable")
        model_global = unique[touch_order]
        remap = np.full(len(links), -1, dtype=np.int64)
        remap[model_global] = np.arange(model_global.shape[0], dtype=np.int64)

        self.entry_path = entry_path_arr
        self.entry_link = remap[entry_global_arr]
        self.entry_agg = self.agg_of_path[entry_path_arr]
        self.n_links = int(model_global.shape[0])
        self.link_keys = [links[g].key for g in model_global.tolist()]
        self.capacity_units = capacity_bps[model_global] / self.capacity_unit


#: LRU of path-set structures keyed by (network signature, link insertion
#: order, aggregate pairs + exact path tuples).  Module-level and
#: fork-inherited; spawn workers simply start cold.  Demands are not part
#: of the key — the structure is demand-independent by construction.
_STRUCTURE_CACHE: "OrderedDict[tuple, _PathSetStructure]" = OrderedDict()
_STRUCTURE_CACHE_MAX = 32
_structure_cache_enabled = True


def clear_structure_cache() -> None:
    """Drop every cached path-set structure (benchmarks, tests)."""
    _STRUCTURE_CACHE.clear()


def set_structure_cache_enabled(enabled: bool) -> bool:
    """Toggle the structure cache; returns the previous setting."""
    global _structure_cache_enabled
    previous = _structure_cache_enabled
    _structure_cache_enabled = bool(enabled)
    return previous


def _structure_for(
    network: Network,
    aggregates: Sequence[Aggregate],
    path_lists: Sequence[Sequence[Path]],
) -> Tuple[_PathSetStructure, bool]:
    """The (possibly cached) structure; second element = cache hit.

    The key folds in the link *insertion order* on top of the content
    signature because ``capacity_unit`` is a float sum over links in
    insertion order — two equal-content networks enumerated differently
    would differ in final ulps.
    """
    if not _structure_cache_enabled:
        return _PathSetStructure(network, aggregates, path_lists), False
    key = (
        network_signature(network),
        tuple(link.key for link in network.links()),
        tuple(
            (agg.src, agg.dst, tuple(paths))
            for agg, paths in zip(aggregates, path_lists)
        ),
    )
    cached = _STRUCTURE_CACHE.get(key)
    if cached is not None:
        _STRUCTURE_CACHE.move_to_end(key)
        return cached, True
    structure = _PathSetStructure(network, aggregates, path_lists)
    _STRUCTURE_CACHE[key] = structure
    while len(_STRUCTURE_CACHE) > _STRUCTURE_CACHE_MAX:
        _STRUCTURE_CACHE.popitem(last=False)
    return structure, False


class _PathLpBuilder:
    """Common scaffolding for the latency and MinMax path LPs.

    One builder = one (network, path sets, demands) triple.  The
    demand-independent arrays live in a shared cached
    :class:`_PathSetStructure`; the builder adds the demand-derived
    vectors and emits :class:`CompiledLP` models.  Both MinMax stages
    (and any number of re-solves) can share a single builder.
    """

    def __init__(
        self,
        network: Network,
        path_sets: Mapping[Aggregate, Sequence[Path]],
    ) -> None:
        if not path_sets:
            raise ValueError("no aggregates to place")
        for agg, paths in path_sets.items():
            if not paths:
                raise ValueError(f"aggregate {agg.src}->{agg.dst} has no paths")
        self.network = network
        self.path_sets = {agg: list(paths) for agg, paths in path_sets.items()}
        self.aggregates = list(self.path_sets)

        self.structure, self.structure_warm = _structure_for(
            network, self.aggregates,
            [self.path_sets[agg] for agg in self.aggregates],
        )
        s = self.structure
        self.capacity_unit = s.capacity_unit

        flows = np.fromiter(
            (agg.n_flows for agg in self.aggregates),
            dtype=np.int64, count=s.n_aggs,
        )
        total_flows = int(flows.sum())
        self.flow_weight = flows / total_flows
        demand = np.fromiter(
            (agg.demand_bps for agg in self.aggregates),
            dtype=np.float64, count=s.n_aggs,
        )
        self.demand_units = demand / s.capacity_unit

        # Flow-weighted mean shortest delay, summed sequentially in
        # aggregate order (bit-compatible with the historical Python sum).
        self.delay_unit = sum((self.flow_weight * s.shortest_delay).tolist())
        if self.delay_unit <= 0:
            self.delay_unit = 1e-3  # degenerate all-zero-delay network

    # ------------------------------------------------------------------
    def delay_cost(self, with_tiebreak: bool = True) -> np.ndarray:
        """Figure 12's flow-weighted delay coefficient per x column."""
        s = self.structure
        delay = s.path_delay / self.delay_unit
        weight = self.flow_weight[s.agg_of_path]
        cost = weight * delay
        if with_tiebreak:
            # d_p * M1 / S_a: cheaper to detour aggregates whose shortest
            # delay is already large.
            ratio = self.delay_unit / np.maximum(s.shortest_delay, 1e-9)
            cost = cost + cost * M1_TIEBREAK * ratio[s.agg_of_path]
        return cost

    def _assignment_coo(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(data, rows, cols) of the sum_p x_ap = 1 rows (rows 0..A-1)."""
        s = self.structure
        return (
            np.ones(s.n_paths),
            s.agg_of_path,
            np.arange(s.n_paths, dtype=np.int64),
        )

    def latency_model(self) -> CompiledLP:
        """The Figure 12 LP; columns = x | Omax | O_l per used link."""
        s = self.structure
        p, a, l = s.n_paths, s.n_aggs, s.n_links
        omax_col = p
        o_cols = p + 1 + np.arange(l, dtype=np.int64)
        link_rows = a + 2 * np.arange(l, dtype=np.int64)
        assign = self._assignment_coo()
        data = np.concatenate([
            assign[0],
            self.demand_units[s.entry_agg],      # load terms
            -s.capacity_units,                   # -C_l O_l
            np.ones(l),                          # O_l ...
            np.full(l, -1.0),                    # ... <= Omax
        ])
        rows = np.concatenate([
            assign[1],
            a + 2 * s.entry_link,
            link_rows,
            link_rows + 1,
            link_rows + 1,
        ])
        cols = np.concatenate([
            assign[2], s.entry_path, o_cols, o_cols,
            np.full(l, omax_col, dtype=np.int64),
        ])
        senses = np.concatenate([
            np.full(a, SENSE_EQ, dtype=np.int8),
            np.full(2 * l, SENSE_LE, dtype=np.int8),
        ])
        rhs = np.concatenate([np.ones(a), np.zeros(2 * l)])
        c = np.concatenate([
            self.delay_cost(with_tiebreak=True),
            np.array([M2_MAX_OVERLOAD]),
            np.full(l, M3_TOTAL_OVERLOAD),
        ])
        lower = np.concatenate([np.zeros(p), np.ones(1 + l)])
        upper = np.concatenate([np.ones(p), np.full(1 + l, np.inf)])
        return CompiledLP.from_coo(
            n_variables=p + 1 + l, data=data, rows=rows, cols=cols,
            senses=senses, rhs=rhs, c=c, lower=lower, upper=upper,
        )

    def minmax_stage1_model(self) -> CompiledLP:
        """Stage 1: minimize Umax; columns = x | Umax."""
        s = self.structure
        p, a, l = s.n_paths, s.n_aggs, s.n_links
        umax_col = p
        assign = self._assignment_coo()
        data = np.concatenate([
            assign[0],
            self.demand_units[s.entry_agg],
            -s.capacity_units,                   # -C_l Umax
        ])
        rows = np.concatenate([
            assign[1],
            a + s.entry_link,
            a + np.arange(l, dtype=np.int64),
        ])
        cols = np.concatenate([
            assign[2], s.entry_path,
            np.full(l, umax_col, dtype=np.int64),
        ])
        senses = np.concatenate([
            np.full(a, SENSE_EQ, dtype=np.int8),
            np.full(l, SENSE_LE, dtype=np.int8),
        ])
        rhs = np.concatenate([np.ones(a), np.zeros(l)])
        c = np.zeros(p + 1)
        c[umax_col] = 1.0
        lower = np.zeros(p + 1)
        upper = np.concatenate([np.ones(p), np.array([np.inf])])
        return CompiledLP.from_coo(
            n_variables=p + 1, data=data, rows=rows, cols=cols,
            senses=senses, rhs=rhs, c=c, lower=lower, upper=upper,
        )

    def minmax_stage2_model(self, cap: float) -> CompiledLP:
        """Stage 2: minimize delay with loads capped at ``cap``."""
        s = self.structure
        p, a = s.n_paths, s.n_aggs
        assign = self._assignment_coo()
        data = np.concatenate([assign[0], self.demand_units[s.entry_agg]])
        rows = np.concatenate([assign[1], a + s.entry_link])
        cols = np.concatenate([assign[2], s.entry_path])
        senses = np.concatenate([
            np.full(a, SENSE_EQ, dtype=np.int8),
            np.full(s.n_links, SENSE_LE, dtype=np.int8),
        ])
        rhs = np.concatenate([np.ones(a), s.capacity_units * cap])
        return CompiledLP.from_coo(
            n_variables=p, data=data, rows=rows, cols=cols,
            senses=senses, rhs=rhs, c=self.delay_cost(with_tiebreak=True),
            lower=np.zeros(p), upper=np.ones(p),
        )

    def extract_fractions(
        self, solution: Solution
    ) -> Dict[Aggregate, List[Tuple[Path, float]]]:
        """Per-aggregate (path, fraction) splits via one vectorized slice."""
        values = solution.x[: self.structure.n_paths].tolist()
        fractions: Dict[Aggregate, List[Tuple[Path, float]]] = {}
        position = 0
        for agg in self.aggregates:
            paths = self.path_sets[agg]
            fractions[agg] = list(zip(paths, values[position:position + len(paths)]))
            position += len(paths)
        return fractions

    def _assemble_attrs(self) -> Optional[dict]:
        recorder = _recorder()
        if not recorder.enabled:
            return None
        return {
            "backend": resolve_backend(),
            "warm": self.structure_warm,
            "n_paths": self.structure.n_paths,
            "n_links": self.structure.n_links,
        }


def _placement_utilization(
    network: Network,
    fractions: Dict[Aggregate, List[Tuple[Path, float]]],
) -> Dict[Tuple[str, str], float]:
    """Raw per-link utilization of a fractional placement."""
    link_loads: Dict[Tuple[str, str], float] = {}
    for agg, splits in fractions.items():
        for path, fraction in splits:
            for key in path_links(path):
                link_loads[key] = (
                    link_loads.get(key, 0.0) + fraction * agg.demand_bps
                )
    return {
        key: load / network.link(*key).capacity_bps
        for key, load in link_loads.items()
    }


def path_lp_columns(
    network: Network, path_sets: Mapping[Aggregate, Sequence[Path]]
) -> int:
    """Column count of the Figure 12 LP over the given path sets.

    One variable per (aggregate, path), plus Omax, plus one overload
    variable per directed link.  This is the quantity that explodes on
    ingest-scale graphs with dense matrices — 10^8 columns at 10k nodes —
    and the number that :func:`repro.tm.regions.maybe_aggregate` bounds
    by collapsing demands onto per-region gateways before the LP ever
    sees them.  Cheap (no assembly); callers can budget before building.
    """
    n_paths = sum(len(paths) for paths in path_sets.values())
    return n_paths + 1 + network.num_links


def solve_latency_lp(
    network: Network,
    path_sets: Mapping[Aggregate, Sequence[Path]],
    builder: Optional[_PathLpBuilder] = None,
) -> PathLpResult:
    """One solve of the Figure 12 latency-optimization LP."""
    if builder is None:
        builder = _PathLpBuilder(network, path_sets)
    with _recorder().span("lp_assemble", builder._assemble_attrs()):
        model = builder.latency_model()
    solution = model.solve()

    s = builder.structure
    overload_values = solution.x[s.n_paths + 1:].tolist()
    return PathLpResult(
        fractions=builder.extract_fractions(solution),
        link_overload=dict(zip(s.link_keys, overload_values)),
        max_overload=float(solution.x[s.n_paths]),
        objective=solution.objective,
    )


def solve_minmax_lp(
    network: Network,
    path_sets: Mapping[Aggregate, Sequence[Path]],
    utilization_cap: Optional[float] = None,
    builder: Optional[_PathLpBuilder] = None,
) -> Tuple[PathLpResult, float]:
    """The MinMax two-stage LP over the given path sets.

    Stage 1 minimizes the maximum link utilization Umax (no lower bound at
    1: MinMax by definition drives utilization as low as it can).  Stage 2
    re-optimizes latency subject to every link staying within the stage-1
    utilization.  Returns the placement and the achieved Umax.

    ``utilization_cap`` can preseed a known-optimal stage-1 value (used by
    the iterative full-MinMax driver to skip re-deriving it).  Both stages
    share one builder — and therefore one set of incidence arrays — so
    stage 2 costs only its own numpy assembly and solve.
    """
    if builder is None:
        builder = _PathLpBuilder(network, path_sets)
    if utilization_cap is None:
        with _recorder().span("lp_assemble", builder._assemble_attrs()):
            stage1 = builder.minmax_stage1_model()
        utilization_cap = float(
            stage1.solve().x[builder.structure.n_paths]
        )

    cap = utilization_cap * (1.0 + 1e-6) + 1e-9
    with _recorder().span("lp_assemble", builder._assemble_attrs()):
        stage2 = builder.minmax_stage2_model(cap)
    solution = stage2.solve()

    fractions = builder.extract_fractions(solution)
    # Report per-link utilization of the final placement.
    link_util = _placement_utilization(network, fractions)
    result = PathLpResult(
        fractions=fractions,
        # Raw utilizations (not clipped at 1): MinMax callers need to see
        # which links are hottest even when everything fits.
        link_overload=link_util,
        max_overload=max(1.0, max(link_util.values(), default=0.0)),
        objective=solution.objective,
    )
    return result, utilization_cap


def solve_minmax_approx(
    network: Network,
    path_sets: Mapping[Aggregate, Sequence[Path]],
    target_gap: float = 0.05,
    max_iterations: int = 300,
    builder: Optional[_PathLpBuilder] = None,
) -> Tuple[ApproxPathLpResult, float]:
    """Approximate MinMax with a certified optimality gap.

    Frank-Wolfe-style iterative splitting: each round shifts a step of
    every aggregate onto its cheapest path under softmax link prices
    concentrated on the hottest links.  Every round also evaluates the
    LP dual bound ``sum_a d_a min_p cost_p(y) / sum_l c_l y_l`` — valid
    for *any* non-negative price vector y — so the returned
    ``certified_gap`` between the best feasible placement (upper bound)
    and the best dual value (lower bound) brackets the exact optimum no
    matter how far the heuristic got.  Terminates at ``target_gap`` or
    ``max_iterations``, whichever comes first; the certificate holds
    either way.

    Wholly deterministic: fixed step schedule, first-index tie breaks.
    Returns ``(result, upper_bound)`` mirroring :func:`solve_minmax_lp`.
    """
    if target_gap <= 0:
        raise ValueError(f"target_gap must be positive, got {target_gap}")
    if builder is None:
        builder = _PathLpBuilder(network, path_sets)
    s = builder.structure
    n_paths, n_links = s.n_paths, s.n_links
    demand = builder.demand_units
    capacity = s.capacity_units
    entry_weight = demand[s.entry_agg]
    path_index = np.arange(n_paths, dtype=np.int64)

    # Start from all-shortest-paths (the first path of each set).
    x = np.zeros(n_paths)
    x[s.path_offsets] = 1.0
    best_x = x.copy()
    best_ub = math.inf
    best_lb = 0.0
    gap = math.inf
    # Moderate sharpness for the step direction (spreads flow over a
    # congested cut instead of chasing one link), a geometric ladder of
    # sharpness levels for the dual bound: LB(y) is valid for *any*
    # non-negative prices, so we simply keep the best.  The iterate
    # oscillates through short phases and the sharp-price bound peaks on
    # the phase that isolates the true bottleneck cut, so one ladder rung
    # is tried every round; the cycle period (4) is chosen coprime to the
    # typical phase period (~3) so every (phase, sharpness) pair gets
    # sampled.
    base = math.log(max(n_links, 2))
    eta_dir = 2.0 * base
    eta_cycle = [8.0 * base, 32.0 * base, 128.0 * base, 4.0 * base]
    eta_ladder = [eta_dir] + eta_cycle
    iterations = 0

    def dual_bound(
        utilization: np.ndarray, umax: float, etas: Sequence[float]
    ) -> float:
        """Best certified lower bound over the given sharpness levels."""
        best = 0.0
        for eta in etas:
            prices = np.exp(eta * (utilization / umax - 1.0))
            price_mass = float(capacity @ prices)
            cost = np.bincount(
                s.entry_path, weights=prices[s.entry_link],
                minlength=n_paths,
            )
            cheapest = np.minimum.reduceat(cost, s.path_offsets)
            best = max(best, float(demand @ cheapest) / price_mass)
        return best

    util_sum = np.zeros(n_links)
    for t in range(max_iterations):
        iterations = t + 1
        loads = np.bincount(
            s.entry_link, weights=x[s.entry_path] * entry_weight,
            minlength=n_links,
        )
        utilization = loads / capacity
        util_sum += utilization
        umax = float(utilization.max())
        if umax < best_ub:
            best_ub = umax
            best_x = x.copy()
        if umax <= 0.0:
            best_lb = 0.0
            gap = 0.0
            break

        # Step direction: softmax prices over the current profile.
        prices = np.exp(eta_dir * (utilization / umax - 1.0))
        path_cost = np.bincount(
            s.entry_path, weights=prices[s.entry_link], minlength=n_paths
        )
        cheapest = np.minimum.reduceat(path_cost, s.path_offsets)
        # Two dual candidates per round: the direction prices come for
        # free (cost vector already computed), plus one cycling rung of
        # the sharpness ladder.
        direction_lb = (
            float(demand @ cheapest) / float(capacity @ prices)
        )
        best_lb = max(
            best_lb,
            direction_lb,
            dual_bound(utilization, umax, eta_cycle[t % 4 : t % 4 + 1]),
        )
        # The time-averaged profile's prices converge to near-optimal
        # duals; it moves slowly, so sample it sparsely.
        if t % 8 == 7 or t == max_iterations - 1:
            mean_util = util_sum / iterations
            mean_max = float(mean_util.max())
            if mean_max > 0.0:
                best_lb = max(
                    best_lb, dual_bound(mean_util, mean_max, eta_ladder)
                )
        gap = (best_ub - best_lb) / best_lb if best_lb > 0 else math.inf
        if gap <= target_gap:
            break

        # Frank-Wolfe step toward each aggregate's cheapest path (first
        # index wins ties, deterministically).
        candidate = np.where(
            path_cost <= np.repeat(cheapest, s.path_counts) * (1.0 + 1e-12),
            path_index, n_paths,
        )
        pick = np.minimum.reduceat(candidate, s.path_offsets)
        step = 2.0 / (t + 3.0)
        x *= 1.0 - step
        x[pick] += step

    fractions = builder.extract_fractions(
        Solution(objective=best_ub, _values=best_x)
    )
    link_util = _placement_utilization(network, fractions)
    result = ApproxPathLpResult(
        fractions=fractions,
        link_overload=link_util,
        max_overload=max(1.0, max(link_util.values(), default=0.0)),
        objective=best_ub,
        utilization_lower_bound=best_lb,
        utilization_upper_bound=best_ub,
        certified_gap=gap,
        iterations=iterations,
    )
    return result, best_ub

"""Path-based LP formulations shared by the routing schemes.

This module implements the paper's Figure 12 linear program:

    min   sum_a n_a sum_{p in P_a} x_ap (d_p + d_p M1 / S_a)
            + M2 * Omax + sum_l O_l
    s.t.  sum_a sum_{p in P_a} x_ap B_a <= C_l O_l      for all links l
          1 <= O_l <= Omax                              for all links l
          sum_{p in P_a} x_ap = 1                       for all aggregates a

with the paper's priority layering: avoiding congestion dominates (M2
large), total overload is spread if congestion is unavoidable, latency is
the secondary goal, and a small M1 term tie-breaks between equal-delay
placements by preferring to move aggregates whose shortest-path RTT is
already large.

It also implements the MinMax two-stage LP (minimize maximum utilization,
then minimize latency subject to that maximum), which the paper uses as the
TeXCP/MATE-style baseline.

All quantities are normalized before hitting the solver: rates in units of
the mean link capacity and delays in units of the flow-weighted mean
shortest-path delay.  This keeps coefficient magnitudes near 1 and the
HiGHS backend numerically happy (raw bits/s coefficients provoke spurious
unbounded results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lp import LinearProgram, LinExpr, Variable
from repro.net.graph import Network
from repro.net.paths import Path, path_links
from repro.tm.matrix import Aggregate

# Priority layers of the Figure 12 objective (normalized units).
M1_TIEBREAK = 1e-3
M2_MAX_OVERLOAD = 1e4
M3_TOTAL_OVERLOAD = 1e2

#: Overloads within this tolerance of 1.0 count as "fits".
OVERLOAD_TOLERANCE = 1e-5


@dataclass
class PathLpResult:
    """Outcome of one path-based LP solve."""

    fractions: Dict[Aggregate, List[Tuple[Path, float]]]
    link_overload: Dict[Tuple[str, str], float]
    max_overload: float
    objective: float

    @property
    def fits(self) -> bool:
        return self.max_overload <= 1.0 + OVERLOAD_TOLERANCE

    def overloaded_links(self, only_maximal: bool = True) -> List[Tuple[str, str]]:
        """Links with overload > 1; optionally only the maximally loaded.

        The paper's Figure 13 iteration grows paths for aggregates crossing
        links "that are maximally overloaded — i.e., such that
        Ol = Omax > 1".
        """
        if self.fits:
            return []
        if only_maximal:
            threshold = self.max_overload * (1.0 - 1e-6)
        else:
            threshold = 1.0 + OVERLOAD_TOLERANCE
        return [
            key for key, value in self.link_overload.items() if value >= threshold
        ]


class _PathLpBuilder:
    """Common scaffolding for the latency and MinMax path LPs."""

    def __init__(
        self,
        network: Network,
        path_sets: Mapping[Aggregate, Sequence[Path]],
    ) -> None:
        if not path_sets:
            raise ValueError("no aggregates to place")
        for agg, paths in path_sets.items():
            if not paths:
                raise ValueError(f"aggregate {agg.src}->{agg.dst} has no paths")
        self.network = network
        self.path_sets = {agg: list(paths) for agg, paths in path_sets.items()}
        self.aggregates = list(self.path_sets)

        links = list(network.links())
        self.capacity_unit = (
            sum(link.capacity_bps for link in links) / len(links)
        )
        total_flows = sum(agg.n_flows for agg in self.aggregates)
        self.flow_weight = {
            agg: agg.n_flows / total_flows for agg in self.aggregates
        }

        # Per-path delay and link list, computed exactly once: these two
        # loops dominate model-build time, so they read link attributes
        # directly instead of going through the path helper functions.
        link_delay = {link.key: link.delay_s for link in links}
        self._path_links: Dict[Tuple[int, int], List[Tuple[str, str]]] = {}
        self._path_delay: Dict[Tuple[int, int], float] = {}
        for ai, agg in enumerate(self.aggregates):
            for pi, path in enumerate(self.path_sets[agg]):
                keys = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
                self._path_links[(ai, pi)] = keys
                self._path_delay[(ai, pi)] = sum(link_delay[k] for k in keys)

        # Shortest-path delay per aggregate: the first path in each set is
        # required to be the shortest (KspCache guarantees order).
        self.shortest_delay = {
            agg: self._path_delay[(ai, 0)]
            for ai, agg in enumerate(self.aggregates)
        }
        self.delay_unit = sum(
            self.flow_weight[agg] * self.shortest_delay[agg]
            for agg in self.aggregates
        )
        if self.delay_unit <= 0:
            self.delay_unit = 1e-3  # degenerate all-zero-delay network

        self.lp = LinearProgram()
        self.x: Dict[Tuple[int, int], Variable] = {}
        for ai, agg in enumerate(self.aggregates):
            for pi, _ in enumerate(self.path_sets[agg]):
                self.x[(ai, pi)] = self.lp.variable(f"x[{ai},{pi}]", 0.0, 1.0)
            expr = LinExpr()
            for pi in range(len(self.path_sets[agg])):
                expr.add_term(self.x[(ai, pi)], 1.0)
            self.lp.add_constraint(expr, "==", 1.0)

        # Load expression per used directed link, in capacity units.
        self.load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        for ai, agg in enumerate(self.aggregates):
            demand_units = agg.demand_bps / self.capacity_unit
            for pi in range(len(self.path_sets[agg])):
                x_var = self.x[(ai, pi)]
                for key in self._path_links[(ai, pi)]:
                    expr = self.load_exprs.setdefault(key, LinExpr())
                    expr.add_term(x_var, demand_units)

    def delay_objective(self, with_tiebreak: bool = True) -> LinExpr:
        """The flow-weighted delay term of Figure 12 (normalized)."""
        objective = LinExpr()
        for ai, agg in enumerate(self.aggregates):
            weight = self.flow_weight[agg]
            shortest = max(self.shortest_delay[agg], 1e-9)
            for pi in range(len(self.path_sets[agg])):
                delay = self._path_delay[(ai, pi)] / self.delay_unit
                coefficient = weight * delay
                if with_tiebreak:
                    # d_p * M1 / S_a: cheaper to detour aggregates whose
                    # shortest delay is already large.
                    coefficient += (
                        weight * delay * M1_TIEBREAK * (self.delay_unit / shortest)
                    )
                objective.add_term(self.x[(ai, pi)], coefficient)
        return objective

    def extract_fractions(
        self, solution
    ) -> Dict[Aggregate, List[Tuple[Path, float]]]:
        fractions: Dict[Aggregate, List[Tuple[Path, float]]] = {}
        for ai, agg in enumerate(self.aggregates):
            splits = [
                (path, solution.value(self.x[(ai, pi)]))
                for pi, path in enumerate(self.path_sets[agg])
            ]
            fractions[agg] = splits
        return fractions


def solve_latency_lp(
    network: Network,
    path_sets: Mapping[Aggregate, Sequence[Path]],
) -> PathLpResult:
    """One solve of the Figure 12 latency-optimization LP."""
    builder = _PathLpBuilder(network, path_sets)
    lp = builder.lp

    omax = lp.variable("Omax", lower=1.0)
    overload: Dict[Tuple[str, str], Variable] = {}
    for key, load_expr in builder.load_exprs.items():
        o_l = lp.variable(f"O[{key[0]}->{key[1]}]", lower=1.0)
        overload[key] = o_l
        capacity_units = network.link(*key).capacity_bps / builder.capacity_unit
        # sum_a sum_p x_ap B_a <= C_l O_l
        constraint = LinExpr(dict(load_expr.terms))
        constraint.add_term(o_l, -capacity_units)
        lp.add_constraint(constraint, "<=", 0.0)
        # O_l <= Omax
        bound = LinExpr({o_l: 1.0})
        bound.add_term(omax, -1.0)
        lp.add_constraint(bound, "<=", 0.0)

    objective = builder.delay_objective(with_tiebreak=True)
    objective.add_term(omax, M2_MAX_OVERLOAD)
    for o_l in overload.values():
        objective.add_term(o_l, M3_TOTAL_OVERLOAD)
    lp.minimize(objective)

    solution = lp.solve()
    link_overload = {
        key: solution.value(var) for key, var in overload.items()
    }
    return PathLpResult(
        fractions=builder.extract_fractions(solution),
        link_overload=link_overload,
        max_overload=solution.value(omax),
        objective=solution.objective,
    )


def solve_minmax_lp(
    network: Network,
    path_sets: Mapping[Aggregate, Sequence[Path]],
    utilization_cap: Optional[float] = None,
) -> Tuple[PathLpResult, float]:
    """The MinMax two-stage LP over the given path sets.

    Stage 1 minimizes the maximum link utilization Umax (no lower bound at
    1: MinMax by definition drives utilization as low as it can).  Stage 2
    re-optimizes latency subject to every link staying within the stage-1
    utilization.  Returns the placement and the achieved Umax.

    ``utilization_cap`` can preseed a known-optimal stage-1 value (used by
    the iterative full-MinMax driver to skip re-deriving it).
    """
    if utilization_cap is None:
        stage1 = _PathLpBuilder(network, path_sets)
        umax = stage1.lp.variable("Umax", lower=0.0)
        for key, load_expr in stage1.load_exprs.items():
            capacity_units = (
                network.link(*key).capacity_bps / stage1.capacity_unit
            )
            constraint = LinExpr(dict(load_expr.terms))
            constraint.add_term(umax, -capacity_units)
            stage1.lp.add_constraint(constraint, "<=", 0.0)
        stage1.lp.minimize(LinExpr({umax: 1.0}))
        utilization_cap = stage1.lp.solve().value(umax)

    stage2 = _PathLpBuilder(network, path_sets)
    cap = utilization_cap * (1.0 + 1e-6) + 1e-9
    for key, load_expr in stage2.load_exprs.items():
        capacity_units = network.link(*key).capacity_bps / stage2.capacity_unit
        stage2.lp.add_constraint(load_expr, "<=", capacity_units * cap)
    stage2.lp.minimize(stage2.delay_objective(with_tiebreak=True))
    solution = stage2.lp.solve()

    fractions = stage2.extract_fractions(solution)
    # Report per-link utilization of the final placement.
    link_loads: Dict[Tuple[str, str], float] = {}
    for agg, splits in fractions.items():
        for path, fraction in splits:
            for key in path_links(path):
                link_loads[key] = (
                    link_loads.get(key, 0.0) + fraction * agg.demand_bps
                )
    link_util = {
        key: load / network.link(*key).capacity_bps
        for key, load in link_loads.items()
    }
    result = PathLpResult(
        fractions=fractions,
        # Raw utilizations (not clipped at 1): MinMax callers need to see
        # which links are hottest even when everything fits.
        link_overload=link_util,
        max_overload=max(1.0, max(link_util.values(), default=0.0)),
        objective=solution.objective,
    )
    return result, utilization_cap

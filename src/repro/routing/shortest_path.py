"""Delay-proportional shortest-path routing (OSPF/IS-IS style).

The paper's §3 baseline: "how shortest-path routing performs when link costs
are proportional to delay".  Every aggregate rides its single lowest-delay
path, oblivious to load — which is precisely why high-LLPD networks
concentrate traffic (its Figure 3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.graph import Network
from repro.net.paths import KspCache
from repro.routing.base import PathAllocation, Placement, RoutingScheme
from repro.tm.matrix import Aggregate, TrafficMatrix


class ShortestPathRouting(RoutingScheme):
    """Place each aggregate entirely on its lowest-delay path."""

    name = "SP"

    def __init__(self, cache: KspCache | None = None) -> None:
        # An externally provided cache lets callers share Yen state across
        # schemes evaluated on the same network.
        self._cache = cache

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        cache = self._cache if self._cache is not None and \
            self._cache.network is network else KspCache(network)
        allocations: Dict[Aggregate, List[PathAllocation]] = {}
        for agg in tm.aggregates():
            path = cache.shortest(agg.src, agg.dst)
            allocations[agg] = [PathAllocation(path, 1.0)]
        return Placement(network, allocations)

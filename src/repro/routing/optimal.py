"""Latency-optimal routing via iterative path-set growth.

The paper's Figure 13: start each aggregate with only its shortest path,
solve the Figure 12 LP, find maximally overloaded links, grow the path sets
of the aggregates crossing those links with further k-shortest paths, and
repeat until nothing is overloaded.  "Even though this approach involves
multiple runs of the LP optimization, it actually runs very quickly because
the number of variables (paths) in each run is small."

With ``headroom > 0`` the optimization sees capacities scaled by
``1 - headroom`` (the paper's headroom dial, §4) while the returned
placement is judged against the true capacities.

Each iteration's LP goes through :func:`repro.routing.pathlp.solve_latency_lp`,
which caches the demand-independent model structure by (network, path-set)
signature: the no-growth retries here and the LDR tweak loop (same path
sets, scaled demands) skip straight to warm assembly, so the repeated
solves the paper waves off as "very quick" stay that way at fleet scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.graph import Network
from repro.net.paths import KspCache, Path, path_links
from repro.routing.base import (
    Placement,
    RoutingScheme,
    normalize_allocations,
)
from repro.routing.pathlp import PathLpResult, solve_latency_lp
from repro.tm.matrix import Aggregate, TrafficMatrix


@dataclass
class IterationStats:
    """Diagnostics of one iterative solve (useful for the Fig 15 bench)."""

    lp_solves: int
    total_paths: int
    fits: bool
    max_overload: float


def grow_path_sets(
    cache: KspCache,
    path_sets: Dict[Aggregate, List[Path]],
    target_counts: Dict[Aggregate, int],
    crossing: Sequence[Aggregate],
    grow_step: int,
    max_paths: int,
) -> bool:
    """Extend the path lists of the given aggregates; True if any grew."""
    grew = False
    for agg in crossing:
        current = target_counts[agg]
        if current >= max_paths:
            continue
        target_counts[agg] = min(max_paths, current + grow_step)
        paths = cache.get(agg.src, agg.dst, target_counts[agg])
        if len(paths) > len(path_sets[agg]):
            path_sets[agg] = list(paths)
            grew = True
        else:
            # Pair has no more simple paths; remember that.
            target_counts[agg] = max_paths
    return grew


def add_detour_paths(
    network: Network,
    path_sets: Dict[Aggregate, List[Path]],
    crossing: Sequence[Aggregate],
    overloaded: Sequence[Tuple[str, str]],
) -> bool:
    """Add, per crossing aggregate, its shortest path avoiding the
    overloaded links.

    Pure k-shortest-path growth can take combinatorially long to find a
    path that avoids a specific hotspot (on multi-continent topologies,
    thousands of same-ocean-crossing variants precede the first path over
    a different crossing).  One targeted Dijkstra per aggregate supplies
    exactly the "route around this link" diversity the LP needs.
    Returns True if any path set grew.
    """
    from repro.net.paths import NoPathError, path_links, shortest_path

    all_excluded = set(overloaded)
    grew = False
    for agg in crossing:
        known = set(path_sets[agg])
        # One detour per overloaded link this aggregate currently crosses:
        # when several links are hot at once (e.g. every transatlantic
        # crossing), a single all-avoiding detour often does not exist,
        # but per-link alternatives do — and they are what the LP needs
        # to shift load between hotspots.
        crossed = [
            key
            for path in path_sets[agg]
            for key in path_links(path)
            if key in all_excluded
        ]
        candidates = [frozenset([key]) for key in dict.fromkeys(crossed)]
        if len(all_excluded) > 1:
            candidates.append(frozenset(all_excluded))
        for excluded in candidates:
            try:
                detour = shortest_path(
                    network, agg.src, agg.dst, excluded_links=set(excluded)
                )
            except NoPathError:
                continue
            if detour not in known:
                path_sets[agg].append(detour)
                known.add(detour)
                grew = True
    return grew


def aggregates_crossing(
    result: PathLpResult,
    path_sets: Mapping[Aggregate, Sequence[Path]],
    links: Sequence[Tuple[str, str]],
) -> List[Aggregate]:
    """Aggregates whose current placement routes traffic over the links."""
    link_set = set(links)
    crossing = []
    for agg, splits in result.fractions.items():
        for path, fraction in splits:
            if fraction <= 1e-9:
                continue
            if any(key in link_set for key in path_links(path)):
                crossing.append(agg)
                break
    return crossing


def solve_iterative_latency(
    network: Network,
    tm: TrafficMatrix,
    cache: Optional[KspCache] = None,
    initial_k: int = 1,
    grow_step: int = 2,
    max_paths: int = 50,
    max_iterations: int = 60,
    warm_counts: Optional[Dict[Tuple[str, str], int]] = None,
    use_detours: bool = True,
) -> Tuple[PathLpResult, IterationStats]:
    """Run the Figure 13 loop to (near) latency-optimality.

    Returns the final LP result plus iteration statistics.  If the traffic
    is genuinely unroutable the final result still carries the
    overload-spreading placement the Figure 12 objective degrades to.

    ``warm_counts`` lets callers that solve repeatedly with slightly
    different demands (the LDR multiplexing loop) start each pair at the
    path count the previous solve ended with, instead of re-growing from
    ``initial_k``.  It is updated in place.
    """
    cache = cache if cache is not None else KspCache(network)
    aggregates = tm.aggregates()
    if not aggregates:
        raise ValueError("traffic matrix has no aggregates to route")
    path_sets: Dict[Aggregate, List[Path]] = {}
    target_counts: Dict[Aggregate, int] = {}
    for agg in aggregates:
        k = initial_k
        if warm_counts is not None:
            k = max(k, warm_counts.get(agg.pair, initial_k))
        paths = cache.get(agg.src, agg.dst, k)
        if not paths:
            raise ValueError(f"no path {agg.src} -> {agg.dst}")
        path_sets[agg] = list(paths)
        target_counts[agg] = k

    solves = 0
    result = None
    for _ in range(max_iterations):
        result = solve_latency_lp(network, path_sets)
        solves += 1
        if result.fits:
            break
        overloaded = result.overloaded_links(only_maximal=True)
        crossing = aggregates_crossing(result, path_sets, overloaded)
        grew = grow_path_sets(
            cache, path_sets, target_counts, crossing, grow_step, max_paths
        )
        # Targeted detours around the hotspot complement blind KSP growth
        # (see add_detour_paths for why both are needed).  The flag exists
        # so the ablation bench can quantify their contribution.
        if use_detours:
            grew |= add_detour_paths(network, path_sets, crossing, overloaded)
        if not grew:
            # Nobody can grow further along the bottleneck: widen the
            # growth to every overloaded link before giving up.
            overloaded = result.overloaded_links(only_maximal=False)
            crossing = aggregates_crossing(result, path_sets, overloaded)
            grew = grow_path_sets(
                cache, path_sets, target_counts, crossing, grow_step, max_paths
            )
            if use_detours:
                grew |= add_detour_paths(network, path_sets, crossing, overloaded)
            if not grew:
                break
    if result is None:
        raise RuntimeError(
            "iterative solve completed without an LP solve; "
            "max_iterations must be >= 1"
        )
    if warm_counts is not None:
        for agg, count in target_counts.items():
            warm_counts[agg.pair] = count
    stats = IterationStats(
        lp_solves=solves,
        total_paths=sum(len(paths) for paths in path_sets.values()),
        fits=result.fits,
        max_overload=result.max_overload,
    )
    return result, stats


class LatencyOptimalRouting(RoutingScheme):
    """The paper's latency-optimal scheme (and the core of LDR).

    ``headroom`` reserves a fraction of every link's capacity: the optimizer
    sees capacities scaled by ``1 - headroom``.  At ``headroom = 0`` this is
    the "living on the edge" latency-optimal placement of Figure 4(a); as
    headroom approaches the MinMax residual the placement converges to
    MinMax (§4).
    """

    def __init__(
        self,
        headroom: float = 0.0,
        initial_k: int = 1,
        grow_step: int = 2,
        max_paths: int = 50,
        cache: Optional[KspCache] = None,
    ) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        self.headroom = headroom
        self.initial_k = initial_k
        self.grow_step = grow_step
        self.max_paths = max_paths
        self._cache = cache
        self.name = "LatencyOptimal" if headroom == 0 else f"LDR(h={headroom:.0%})"
        self.last_stats: Optional[IterationStats] = None

    def place(self, network: Network, tm: TrafficMatrix) -> Placement:
        routed_network = (
            network.with_capacity_factor(1.0 - self.headroom)
            if self.headroom > 0
            else network
        )
        # The KSP cache only depends on delays, never capacities, so a cache
        # built on the unscaled network is valid for the scaled copy too.
        if self._cache is not None and self._cache.network is network:
            cache = self._cache
        else:
            cache = KspCache(network)
        result, stats = solve_iterative_latency(
            routed_network,
            tm,
            cache=cache,
            initial_k=self.initial_k,
            grow_step=self.grow_step,
            max_paths=self.max_paths,
        )
        self.last_stats = stats
        allocations = normalize_allocations(result.fractions)
        unplaced: Dict[Aggregate, float] = {}
        if not result.fits:
            # Traffic that exceeds (scaled) capacity: attribute the excess
            # to the aggregates crossing overloaded links, pro rata.
            overloaded = set(result.overloaded_links(only_maximal=False))
            for agg, splits in result.fractions.items():
                excess_fraction = sum(
                    fraction
                    for path, fraction in splits
                    if fraction > 1e-9
                    and any(key in overloaded for key in path_links(path))
                )
                if excess_fraction > 0:
                    over = result.max_overload - 1.0
                    unplaced[agg] = (
                        agg.demand_bps * excess_fraction * over / result.max_overload
                    )
        return Placement(network, allocations, unplaced_bps=unplaced)

"""Trace-replay simulation of a traffic placement.

The paper's LDR controller *predicts* whether a placement will multiplex
without queueing; this subpackage provides the ground truth: replay the
aggregates' measured rate samples through the placement, evolve per-link
queues interval by interval, and report the transient queueing delays that
actually materialize.  Used by the validation bench and the LDR tests to
close the loop on the controller's promises.
"""

from repro.sim.replay import LinkQueueStats, ReplayResult, replay_placement
from repro.sim.timeline import MinuteReport, TimelineSimulation

__all__ = [
    "LinkQueueStats",
    "ReplayResult",
    "replay_placement",
    "MinuteReport",
    "TimelineSimulation",
]

"""Minute-by-minute simulation of the centralized control loop.

The paper's Figure 11 system runs continuously: every minute the
controller ingests the last minute's measurements, predicts the next
minute (Algorithm 1), optimizes a placement with the multiplexing checks,
and installs it — after which the *next* minute's real traffic flows over
it.  This module simulates exactly that timeline and scores each installed
placement against the traffic that actually arrived, which is the honest
test of the whole prediction-plus-headroom machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController
from repro.net.graph import Network
from repro.sim.replay import replay_placement

Pair = Tuple[str, str]


@dataclass
class MinuteReport:
    """How the placement installed for one minute fared against reality."""

    minute: int
    converged: bool
    ldr_rounds: int
    #: Worst transient queue when the minute's actual samples replay.
    max_queue_delay_s: float
    links_over_budget: int
    #: Placement stretch (weighted by the controller's demand estimates).
    latency_stretch: float
    #: Max utilization under the minute's actual mean rates.
    actual_max_utilization: float


class TimelineSimulation:
    """Drive an LDR controller over a multi-minute trace set."""

    def __init__(
        self,
        network: Network,
        traces_100ms_bps: Mapping[Pair, np.ndarray],
        config: LdrConfig = LdrConfig(),
        samples_per_minute: int = 600,
    ) -> None:
        if not traces_100ms_bps:
            raise ValueError("no traces")
        lengths = {len(v) for v in traces_100ms_bps.values()}
        if len(lengths) != 1:
            raise ValueError("traces must share a length")
        self.network = network
        self.traces = {
            pair: np.asarray(v, dtype=float)
            for pair, v in traces_100ms_bps.items()
        }
        self.samples_per_minute = samples_per_minute
        self.total_minutes = lengths.pop() // samples_per_minute
        if self.total_minutes < 2:
            raise ValueError("need at least two minutes of trace")
        self.controller = LdrController(network, config)

    def _window(self, pair: Pair, minute: int) -> np.ndarray:
        spm = self.samples_per_minute
        return self.traces[pair][minute * spm : (minute + 1) * spm]

    def run(self, n_minutes: Optional[int] = None) -> List[MinuteReport]:
        """Simulate the loop: measure minute m, route, face minute m+1."""
        last = self.total_minutes - 1
        n_minutes = min(n_minutes, last) if n_minutes is not None else last
        reports: List[MinuteReport] = []
        for minute in range(n_minutes):
            traffic = [
                AggregateTraffic(
                    src,
                    dst,
                    self._window((src, dst), minute),
                    [float(self._window((src, dst), minute).mean())],
                )
                for (src, dst) in self.traces
            ]
            result = self.controller.route(traffic)

            next_samples = {
                pair: self._window(pair, minute + 1) for pair in self.traces
            }
            replay = replay_placement(
                result.placement,
                next_samples,
                interval_s=self.controller.config.interval_s,
            )
            actual_means = {
                pair: float(samples.mean())
                for pair, samples in next_samples.items()
            }
            utilization = _actual_max_utilization(
                result.placement, actual_means
            )
            reports.append(
                MinuteReport(
                    minute=minute,
                    converged=result.converged,
                    ldr_rounds=result.rounds,
                    max_queue_delay_s=replay.max_queue_delay_s,
                    links_over_budget=len(
                        replay.links_exceeding(self.controller.config.max_queue_s)
                    ),
                    latency_stretch=result.placement.total_latency_stretch(),
                    actual_max_utilization=utilization,
                )
            )
        return reports


def _actual_max_utilization(placement, actual_means_bps: Dict[Pair, float]) -> float:
    """Max link utilization if each aggregate ran at its actual mean."""
    from repro.net.paths import path_links

    loads: Dict[Tuple[str, str], float] = {}
    for agg in placement.aggregates:
        mean = actual_means_bps.get(agg.pair, agg.demand_bps)
        for alloc in placement.paths_for(agg):
            rate = mean * alloc.fraction
            for key in path_links(alloc.path):
                loads[key] = loads.get(key, 0.0) + rate
    network = placement.network
    if not loads:
        return 0.0
    return max(
        load / network.link(*key).capacity_bps for key, load in loads.items()
    )

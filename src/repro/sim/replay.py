"""Replay rate samples through a placement and measure real queueing.

The model is the same fluid model the paper's controller assumes: time
advances in fixed intervals (100 ms by default); within an interval each
aggregate offers its sampled rate, split across its paths by the
placement's fractions; each directed link drains at capacity and carries
excess bits over to the next interval as queue.  Queueing *delay* on a
link is queue depth divided by capacity.

This is deliberately the controller's own model — the point is to verify
the control loop end to end: a placement that passed the multiplexing
checks must, when the very samples it was checked against are replayed,
stay within the queue budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.net.paths import path_links
from repro.routing.base import Placement

Pair = Tuple[str, str]


@dataclass
class LinkQueueStats:
    """Queueing behaviour of one directed link over the replay."""

    max_queue_bits: float
    max_queue_delay_s: float
    intervals_with_queue: int
    mean_utilization: float


@dataclass
class ReplayResult:
    """Outcome of replaying a trace window through a placement."""

    per_link: Dict[Tuple[str, str], LinkQueueStats]
    interval_s: float

    @property
    def max_queue_delay_s(self) -> float:
        if not self.per_link:
            return 0.0
        return max(stats.max_queue_delay_s for stats in self.per_link.values())

    def links_exceeding(self, max_queue_s: float) -> List[Tuple[str, str]]:
        return [
            key
            for key, stats in self.per_link.items()
            if stats.max_queue_delay_s > max_queue_s
        ]


def replay_placement(
    placement: Placement,
    samples_bps: Mapping[Pair, np.ndarray],
    interval_s: float = 0.1,
    drop_horizon_s: Optional[float] = None,
) -> ReplayResult:
    """Replay per-aggregate rate samples through a placement.

    ``samples_bps`` maps each aggregate's (src, dst) pair to its rate
    samples; all arrays must share a length.  Aggregates without samples
    are replayed at their mean demand.  ``drop_horizon_s`` optionally caps
    each queue (bits beyond ``capacity * horizon`` are dropped), modelling
    a finite buffer; by default queues are unbounded.
    """
    if interval_s <= 0:
        raise ValueError(f"interval must be positive, got {interval_s}")
    lengths = {len(v) for v in samples_bps.values()}
    if len(lengths) > 1:
        raise ValueError(f"sample arrays must share a length, got {sorted(lengths)}")
    n_intervals = lengths.pop() if lengths else 1

    network = placement.network
    # Per-link offered rate per interval.
    offered: Dict[Tuple[str, str], np.ndarray] = {}
    for agg in placement.aggregates:
        samples = samples_bps.get(agg.pair)
        if samples is None:
            samples = np.full(n_intervals, agg.demand_bps)
        samples = np.asarray(samples, dtype=float)
        for alloc in placement.paths_for(agg):
            if alloc.fraction <= 1e-12:
                continue
            share = samples * alloc.fraction
            for key in path_links(alloc.path):
                if key in offered:
                    offered[key] = offered[key] + share
                else:
                    offered[key] = share.copy()

    per_link: Dict[Tuple[str, str], LinkQueueStats] = {}
    for key, rates in offered.items():
        capacity = network.link(*key).capacity_bps
        queue_cap_bits = (
            capacity * drop_horizon_s if drop_horizon_s is not None else None
        )
        queue_bits = 0.0
        max_queue = 0.0
        queued_intervals = 0
        excess = (rates - capacity) * interval_s
        for delta in excess:
            queue_bits = max(0.0, queue_bits + delta)
            if queue_cap_bits is not None:
                queue_bits = min(queue_bits, queue_cap_bits)
            if queue_bits > 0:
                queued_intervals += 1
            max_queue = max(max_queue, queue_bits)
        per_link[key] = LinkQueueStats(
            max_queue_bits=max_queue,
            max_queue_delay_s=max_queue / capacity,
            intervals_with_queue=queued_intervals,
            mean_utilization=float(rates.mean() / capacity),
        )
    return ReplayResult(per_link=per_link, interval_s=interval_s)

"""A minimal LP modelling layer with reusable compiled models.

Design goals, in order: correctness, fast model assembly (sparse matrices
built from coordinate arrays, no per-coefficient Python object churn
beyond plain tuples), and a small, explicit API::

    lp = LinearProgram()
    x = lp.variable("x", lower=0.0)
    y = lp.variable("y", lower=0.0)
    lp.add_constraint(LinExpr({x: 1.0, y: 2.0}), "<=", 10.0)
    lp.minimize(LinExpr({x: -1.0, y: -1.0}))
    solution = lp.solve()
    solution.value(x)

Only what the routing formulations need is implemented: continuous
variables, <= / >= / == constraints and a linear objective (minimization).

Two layers:

* :class:`LinearProgram` is the builder.  Incremental, name-carrying,
  accepts both :class:`LinExpr` rows and bulk coordinate blocks
  (:meth:`LinearProgram.add_variables` / :meth:`LinearProgram.add_rows`),
  and compiles to —
* :class:`CompiledLP`, the solver-ready form: one canonical CSR matrix
  plus senses, rhs, objective and bounds arrays.  The numeric payload
  (rhs, objective, bounds, column scales) can be mutated in place and the
  model re-solved without re-assembly; rows and columns can also be
  appended.  A compiled model remembers that it has been solved, so
  repeat solves are *warm*: the scipy path skips re-splitting the matrix
  and the optional HiGHS path re-uses one ``Highs`` instance whose basis
  carries over between solves.

Backends
--------
``REPRO_LP_BACKEND`` selects the solver: ``auto`` (default — ``highspy``
when importable, else scipy), ``scipy`` (:func:`scipy.optimize.linprog`
``method="highs"``), or ``highs`` (the native ``highspy`` bindings; an
error when the package is missing).  Both backends drive the same HiGHS
solver, and exact results are bit-identical between them; the native
backend additionally keeps a warm simplex basis across payload mutations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from types import ModuleType
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

import numpy as np
import numpy.typing as npt
from scipy import sparse
from scipy.optimize import linprog

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]

#: Lazily bound telemetry module (a module-level import would drag the
#: whole experiments package into every LP import; see
#: :mod:`repro.net.paths` for the same idiom).
_telemetry: Optional[ModuleType] = None


def _recorder() -> Any:
    global _telemetry
    if _telemetry is None:
        from repro.experiments import telemetry

        _telemetry = telemetry
    return _telemetry.recorder()


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
#: Environment variable selecting the LP backend: auto | scipy | highs.
BACKEND_ENV = "REPRO_LP_BACKEND"

_highspy_module: Optional[ModuleType] = None
_highspy_probed = False


def _highspy() -> Optional[ModuleType]:
    """The ``highspy`` module when importable, else ``None`` (memoized)."""
    global _highspy_module, _highspy_probed
    if not _highspy_probed:
        _highspy_probed = True
        try:
            import highspy  # type: ignore[import-not-found]
        except ImportError:
            _highspy_module = None
        else:
            _highspy_module = highspy
    return _highspy_module


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment, preferred first."""
    if _highspy() is not None:
        return ("highs", "scipy")
    return ("scipy",)


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request (or ``$REPRO_LP_BACKEND``) to a name.

    Returns ``"scipy"`` or ``"highs"``.  ``auto`` (the default) prefers
    the native ``highspy`` bindings when installed and falls back to
    scipy; an explicit ``highs`` request without the package installed
    is an error rather than a silent fallback.
    """
    value = name if name is not None else os.environ.get(BACKEND_ENV, "auto")
    value = value.strip().lower()
    if value in ("", "auto"):
        return "highs" if _highspy() is not None else "scipy"
    if value == "scipy":
        return "scipy"
    if value in ("highs", "highspy"):
        if _highspy() is None:
            raise RuntimeError(
                "LP backend 'highs' requested (REPRO_LP_BACKEND or call "
                "site) but the highspy package is not installed; use "
                "'scipy' or 'auto' instead"
            )
        return "highs"
    raise ValueError(
        f"unknown LP backend {value!r}; choose 'auto', 'scipy' or 'highs'"
    )


class InfeasibleError(Exception):
    """The LP has no feasible point."""


class UnboundedError(Exception):
    """The LP objective is unbounded below."""


@dataclass(frozen=True)
class Variable:
    """A handle to one LP column."""

    index: int
    name: str

    def __mul__(self, coefficient: float) -> "LinExpr":
        return LinExpr({self: float(coefficient)})

    __rmul__ = __mul__

    def __add__(self, other: Union["Variable", "LinExpr"]) -> "LinExpr":
        return LinExpr({self: 1.0}) + other


class LinExpr:
    """A linear expression: a mapping from variables to coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Variable, float]] = None) -> None:
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}

    def add_term(self, variable: Variable, coefficient: float) -> "LinExpr":
        """Accumulate ``coefficient * variable`` in place (returns self)."""
        self.terms[variable] = self.terms.get(variable, 0.0) + float(coefficient)
        return self

    def __add__(self, other: Union["LinExpr", Variable]) -> "LinExpr":
        result = LinExpr(self.terms)
        if isinstance(other, Variable):
            result.add_term(other, 1.0)
        else:
            for variable, coefficient in other.terms.items():
                result.add_term(variable, coefficient)
        return result

    def __mul__(self, scalar: float) -> "LinExpr":
        return LinExpr(
            {variable: coefficient * scalar for variable, coefficient in self.terms.items()}
        )

    __rmul__ = __mul__

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        return " ".join(parts) if parts else "0"


@dataclass
class Constraint:
    """One row of the LP: ``expr sense rhs``."""

    expr: LinExpr
    sense: str
    rhs: float

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {self.sense!r}")


@dataclass
class Solution:
    """A solved LP: objective value plus the primal point."""

    objective: float
    _values: FloatArray

    @property
    def x(self) -> FloatArray:
        """The full primal point as one float64 array (do not mutate)."""
        return self._values

    def value(self, variable: Variable) -> float:
        return float(self._values[variable.index])

    def values(self, variables: Iterable[Variable]) -> List[float]:
        """Primal values for ``variables`` via one fancy index."""
        index = np.fromiter(
            (variable.index for variable in variables), dtype=np.int64
        )
        if index.size == 0:
            return []
        return cast(List[float], self._values[index].tolist())


# Sense codes used by the compiled form (one int8 per row).
SENSE_LE = 0
SENSE_GE = 1
SENSE_EQ = 2

_SENSE_CODE = {"<=": SENSE_LE, ">=": SENSE_GE, "==": SENSE_EQ}


def _as_float_array(values: Union[Sequence[float], FloatArray]) -> FloatArray:
    return np.ascontiguousarray(np.asarray(values, dtype=np.float64))


def _as_index_array(values: Union[Sequence[int], IntArray]) -> IntArray:
    return np.ascontiguousarray(np.asarray(values, dtype=np.int64))


def sense_codes(
    senses: Union[str, Sequence[str], npt.NDArray[np.int8]], n_rows: int
) -> npt.NDArray[np.int8]:
    """Normalize a sense spec (one string, strings, or codes) to int8."""
    if isinstance(senses, str):
        if senses not in _SENSE_CODE:
            raise ValueError(f"unknown constraint sense {senses!r}")
        return np.full(n_rows, _SENSE_CODE[senses], dtype=np.int8)
    if isinstance(senses, np.ndarray) and senses.dtype == np.int8:
        if senses.shape != (n_rows,):
            raise ValueError(
                f"senses shape {senses.shape} != ({n_rows},)"
            )
        return np.ascontiguousarray(senses)
    codes = np.empty(n_rows, dtype=np.int8)
    items = list(cast(Sequence[str], senses))
    if len(items) != n_rows:
        raise ValueError(f"{len(items)} senses for {n_rows} rows")
    for i, sense in enumerate(items):
        if sense not in _SENSE_CODE:
            raise ValueError(f"unknown constraint sense {sense!r}")
        codes[i] = _SENSE_CODE[sense]
    return codes


class CompiledLP:
    """A solver-ready LP: canonical CSR matrix plus numeric payload.

    The matrix holds every row in insertion order with its *original*
    sense (no ``>=`` negation baked in); scipy's ``A_ub``/``A_eq`` split
    is derived lazily and cached.  Payload mutators (:meth:`set_rhs`,
    :meth:`set_objective`, :meth:`set_variable_bounds`) keep the matrix —
    and any warm solver state — intact; structural mutators
    (:meth:`scale_columns`, :meth:`add_rows`, :meth:`add_columns`)
    invalidate the derived views and the native-backend model.

    A model that has been solved once is *warm*: repeat solves skip the
    split (scipy) or re-enter HiGHS with the previous basis (highspy).
    """

    def __init__(
        self,
        matrix: Any,
        senses: npt.NDArray[np.int8],
        rhs: FloatArray,
        c: FloatArray,
        lower: FloatArray,
        upper: FloatArray,
    ) -> None:
        self._a = matrix.tocsr()
        self._a.sum_duplicates()
        n_rows, n_cols = self._a.shape
        self._senses = np.ascontiguousarray(senses, dtype=np.int8)
        self._rhs = _as_float_array(rhs)
        self._c = _as_float_array(c)
        self._lower = _as_float_array(lower)
        self._upper = _as_float_array(upper)
        if self._senses.shape[0] != n_rows or self._rhs.shape[0] != n_rows:
            raise ValueError("senses/rhs length != matrix row count")
        if (
            self._c.shape[0] != n_cols
            or self._lower.shape[0] != n_cols
            or self._upper.shape[0] != n_cols
        ):
            raise ValueError("c/bounds length != matrix column count")
        # Lazily derived scipy views: (ub_idx, eq_idx, a_ub, a_eq).
        self._split: Optional[Tuple[IntArray, IntArray, Any, Any]] = None
        self._highs: Any = None
        self._solved = False

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        n_variables: int,
        data: FloatArray,
        rows: IntArray,
        cols: IntArray,
        senses: npt.NDArray[np.int8],
        rhs: FloatArray,
        c: FloatArray,
        lower: FloatArray,
        upper: FloatArray,
    ) -> "CompiledLP":
        """Build from coordinate arrays (exact zeros are dropped)."""
        data = _as_float_array(data)
        rows = _as_index_array(rows)
        cols = _as_index_array(cols)
        keep = data != 0.0
        if not bool(keep.all()):
            data, rows, cols = data[keep], rows[keep], cols[keep]
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(rhs), n_variables)
        )
        return cls(matrix, senses, rhs, c, lower, upper)

    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        return int(self._a.shape[1])

    @property
    def n_rows(self) -> int:
        return int(self._a.shape[0])

    @property
    def warm(self) -> bool:
        """Whether this model has been solved at least once."""
        return self._solved

    @property
    def c(self) -> FloatArray:
        """The objective vector (mutable in place)."""
        return self._c

    @property
    def rhs(self) -> FloatArray:
        """The right-hand-side vector (mutable in place)."""
        return self._rhs

    # ------------------------------------------------------------------
    # Payload mutators: keep the matrix and warm solver state.
    # ------------------------------------------------------------------
    def set_rhs(
        self,
        rows: Union[Sequence[int], IntArray, None],
        values: Union[float, Sequence[float], FloatArray],
    ) -> None:
        """Overwrite rhs entries (``rows=None`` addresses every row)."""
        if rows is None:
            self._rhs[:] = np.asarray(values, dtype=np.float64)
        else:
            self._rhs[_as_index_array(rows)] = np.asarray(
                values, dtype=np.float64
            )

    def set_objective(
        self,
        cols: Union[Sequence[int], IntArray, None],
        values: Union[float, Sequence[float], FloatArray],
    ) -> None:
        """Overwrite objective entries (``cols=None`` addresses all)."""
        if cols is None:
            self._c[:] = np.asarray(values, dtype=np.float64)
        else:
            self._c[_as_index_array(cols)] = np.asarray(
                values, dtype=np.float64
            )

    def set_variable_bounds(
        self,
        cols: Union[Sequence[int], IntArray, None],
        lower: Union[float, Sequence[float], FloatArray, None] = None,
        upper: Union[float, Sequence[float], FloatArray, None] = None,
    ) -> None:
        """Overwrite variable bounds (``cols=None`` addresses all)."""
        index: Union[slice, IntArray]
        index = slice(None) if cols is None else _as_index_array(cols)
        if lower is not None:
            self._lower[index] = np.asarray(lower, dtype=np.float64)
        if upper is not None:
            self._upper[index] = np.asarray(upper, dtype=np.float64)

    # ------------------------------------------------------------------
    # Structural mutators: invalidate derived views and native state.
    # ------------------------------------------------------------------
    def _touch_structure(self) -> None:
        self._split = None
        self._highs = None
        self._solved = False

    def scale_columns(
        self,
        cols: Union[Sequence[int], IntArray],
        factors: Union[float, Sequence[float], FloatArray],
    ) -> None:
        """Multiply whole columns of the matrix by per-column factors."""
        scale = np.ones(self.n_variables, dtype=np.float64)
        scale[_as_index_array(cols)] = np.asarray(factors, dtype=np.float64)
        self._a.data *= scale[self._a.indices]
        self._touch_structure()

    def add_rows(
        self,
        data: Union[Sequence[float], FloatArray],
        rows: Union[Sequence[int], IntArray],
        cols: Union[Sequence[int], IntArray],
        senses: Union[str, Sequence[str], npt.NDArray[np.int8]],
        rhs: Union[Sequence[float], FloatArray],
    ) -> None:
        """Append rows given as local-coordinate COO arrays."""
        rhs_arr = _as_float_array(rhs)
        n_new = rhs_arr.shape[0]
        codes = sense_codes(senses, n_new)
        data_arr = _as_float_array(data)
        rows_arr = _as_index_array(rows)
        cols_arr = _as_index_array(cols)
        keep = data_arr != 0.0
        if not bool(keep.all()):
            data_arr = data_arr[keep]
            rows_arr = rows_arr[keep]
            cols_arr = cols_arr[keep]
        block = sparse.csr_matrix(
            (data_arr, (rows_arr, cols_arr)),
            shape=(n_new, self.n_variables),
        )
        self._a = sparse.vstack([self._a, block], format="csr")
        self._a.sum_duplicates()
        self._senses = np.concatenate([self._senses, codes])
        self._rhs = np.concatenate([self._rhs, rhs_arr])
        self._touch_structure()

    def add_columns(
        self,
        count: int,
        lower: Union[float, Sequence[float], FloatArray] = 0.0,
        upper: Union[float, Sequence[float], FloatArray] = np.inf,
        objective: Union[float, Sequence[float], FloatArray] = 0.0,
        data: Union[Sequence[float], FloatArray, None] = None,
        rows: Union[Sequence[int], IntArray, None] = None,
        cols: Union[Sequence[int], IntArray, None] = None,
    ) -> int:
        """Append ``count`` columns; returns the first new column index.

        ``data``/``rows``/``cols`` (optional) populate existing rows at
        the new columns, with ``cols`` local to the new block (0-based).
        """
        start = self.n_variables
        n_rows = self.n_rows
        if data is None:
            block = sparse.csr_matrix((n_rows, count))
        else:
            if rows is None or cols is None:
                raise ValueError("data requires rows and cols")
            block = sparse.csr_matrix(
                (
                    _as_float_array(data),
                    (_as_index_array(rows), _as_index_array(cols)),
                ),
                shape=(n_rows, count),
            )
        self._a = sparse.hstack([self._a, block], format="csr")
        self._a.sum_duplicates()
        self._c = np.concatenate(
            [self._c, np.broadcast_to(np.asarray(objective, dtype=np.float64), (count,))]
        )
        self._lower = np.concatenate(
            [self._lower, np.broadcast_to(np.asarray(lower, dtype=np.float64), (count,))]
        )
        self._upper = np.concatenate(
            [self._upper, np.broadcast_to(np.asarray(upper, dtype=np.float64), (count,))]
        )
        self._touch_structure()
        return start

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _ensure_split(self) -> Tuple[IntArray, IntArray, Any, Any]:
        """The cached scipy view: ub/eq row ids + sign-applied slices."""
        if self._split is None:
            ub_idx = cast(
                IntArray, np.flatnonzero(self._senses != SENSE_EQ).astype(np.int64)
            )
            eq_idx = cast(
                IntArray, np.flatnonzero(self._senses == SENSE_EQ).astype(np.int64)
            )
            a_ub = None
            if ub_idx.size:
                a_ub = self._a[ub_idx]
                signs = np.where(
                    self._senses[ub_idx] == SENSE_GE, -1.0, 1.0
                )
                a_ub.data *= np.repeat(signs, np.diff(a_ub.indptr))
            a_eq = self._a[eq_idx] if eq_idx.size else None
            self._split = (ub_idx, eq_idx, a_ub, a_eq)
        return self._split

    def _span_attrs(
        self, backend: str, warm: bool
    ) -> Optional[Dict[str, object]]:
        recorder = _recorder()
        if not recorder.enabled:
            return None
        return {
            "backend": backend,
            "warm": warm,
            "n_variables": self.n_variables,
            "n_constraints": self.n_rows,
        }

    def solve(self, backend: Optional[str] = None) -> Solution:
        """Solve; raises on infeasible/unbounded models.

        The exact optimum is backend-independent; only wall time and
        warm-start behaviour differ.
        """
        resolved = resolve_backend(backend)
        warm = self._solved
        recorder = _recorder()
        attrs = self._span_attrs(resolved, warm)
        if resolved == "highs":
            solution = self._solve_highs(recorder, attrs)
        else:
            solution = self._solve_scipy(recorder, attrs)
        self._solved = True
        return solution

    def _solve_scipy(
        self, recorder: Any, attrs: Optional[Dict[str, object]]
    ) -> Solution:
        with recorder.span("lp_assemble", attrs):
            ub_idx, eq_idx, a_ub, a_eq = self._ensure_split()
            b_ub = None
            if ub_idx.size:
                signs = np.where(self._senses[ub_idx] == SENSE_GE, -1.0, 1.0)
                b_ub = signs * self._rhs[ub_idx]
            b_eq = self._rhs[eq_idx] if eq_idx.size else None
            bounds = np.column_stack([self._lower, self._upper])
        with recorder.span("lp_solve", attrs):
            result = linprog(
                self._c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )
        if result.status == 2:
            raise InfeasibleError("LP is infeasible")
        if result.status == 3:
            raise UnboundedError("LP is unbounded")
        if not result.success:  # pragma: no cover - solver failure
            raise RuntimeError(f"solver failed: {result.message}")
        return Solution(float(result.fun), np.asarray(result.x))

    def _solve_highs(
        self, recorder: Any, attrs: Optional[Dict[str, object]]
    ) -> Solution:  # pragma: no cover - exercised only with highspy
        module = _highspy()
        if module is None:
            raise RuntimeError("highspy backend selected but not installed")
        with recorder.span("lp_assemble", attrs):
            le = self._senses == SENSE_LE
            ge = self._senses == SENSE_GE
            row_lower = np.where(le, -np.inf, self._rhs)
            row_upper = np.where(ge, np.inf, self._rhs)
            highs = self._highs
            if highs is None:
                highs = module.Highs()
                highs.setOptionValue("output_flag", False)
                highs.setOptionValue("threads", 1)
                lp = module.HighsLp()
                lp.num_col_ = self.n_variables
                lp.num_row_ = self.n_rows
                lp.col_cost_ = self._c
                lp.col_lower_ = self._lower
                lp.col_upper_ = self._upper
                lp.row_lower_ = row_lower
                lp.row_upper_ = row_upper
                lp.a_matrix_.format_ = module.MatrixFormat.kRowwise
                lp.a_matrix_.start_ = self._a.indptr
                lp.a_matrix_.index_ = self._a.indices
                lp.a_matrix_.value_ = self._a.data
                highs.passModel(lp)
                self._highs = highs
            else:
                # Re-apply the (cheap, vectorized) numeric payload; the
                # instance keeps its basis, so this is the warm path.
                col_idx = np.arange(self.n_variables, dtype=np.int32)
                row_idx = np.arange(self.n_rows, dtype=np.int32)
                highs.changeColsCost(self.n_variables, col_idx, self._c)
                highs.changeColsBounds(
                    self.n_variables, col_idx, self._lower, self._upper
                )
                highs.changeRowsBounds(
                    self.n_rows, row_idx, row_lower, row_upper
                )
        with recorder.span("lp_solve", attrs):
            highs.run()
        status = highs.getModelStatus()
        statuses = module.HighsModelStatus
        if status == statuses.kInfeasible:
            raise InfeasibleError("LP is infeasible")
        if status in (statuses.kUnbounded, statuses.kUnboundedOrInfeasible):
            raise UnboundedError("LP is unbounded")
        if status != statuses.kOptimal:
            raise RuntimeError(f"HiGHS terminated with status {status!r}")
        point = np.asarray(highs.getSolution().col_value, dtype=np.float64)
        objective = float(highs.getInfo().objective_function_value)
        return Solution(objective, point)


@dataclass
class _RowBlock:
    """A bulk batch of rows held in local-coordinate COO form."""

    data: FloatArray
    rows: IntArray
    cols: IntArray
    senses: npt.NDArray[np.int8]
    rhs: FloatArray

    @property
    def n_rows(self) -> int:
        return int(self.rhs.shape[0])


class LinearProgram:
    """An LP under construction.

    Variables default to being non-negative and unbounded above, which is
    the natural domain for flow fractions, loads and overloads.

    ``solve()`` compiles to a :class:`CompiledLP` and caches it; repeat
    solves without intervening edits reuse the compiled model (and its
    warm solver state).  Call :meth:`compile` for a standalone compiled
    model to mutate and re-solve directly.
    """

    def __init__(self) -> None:
        self._names: List[Optional[str]] = []
        self._lower: List[float] = []
        self._upper: List[Optional[float]] = []
        self._rows: List[Union[Constraint, _RowBlock]] = []
        self._objective: Optional[LinExpr] = None
        self._objective_vector: Optional[FloatArray] = None
        self._compiled: Optional[CompiledLP] = None

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._compiled = None

    def variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> Variable:
        """Create a continuous variable with the given bounds."""
        if upper is not None and upper < lower:
            raise ValueError(f"variable {name!r}: upper {upper} < lower {lower}")
        index = len(self._names)
        self._names.append(name)
        self._lower.append(float(lower))
        self._upper.append(None if upper is None else float(upper))
        self._invalidate()
        return Variable(index, name)

    def variables(
        self, prefix: str, count: int, lower: float = 0.0, upper: Optional[float] = None
    ) -> List[Variable]:
        """Create ``count`` variables named ``prefix[i]``."""
        return [self.variable(f"{prefix}[{i}]", lower, upper) for i in range(count)]

    def add_variables(
        self,
        count: int,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> int:
        """Bulk-create ``count`` anonymous columns; returns the first index.

        No :class:`Variable` handles (or names) are materialized — address
        the columns by index in bulk rows/objective arrays.
        """
        start = len(self._names)
        self._names.extend([None] * count)
        self._lower.extend([float(lower)] * count)
        self._upper.extend(
            [None if upper is None else float(upper)] * count
        )
        self._invalidate()
        return start

    def add_constraint(
        self, expr: Union[LinExpr, Variable], sense: str, rhs: float
    ) -> Constraint:
        if isinstance(expr, Variable):
            expr = LinExpr({expr: 1.0})
        constraint = Constraint(expr, sense, float(rhs))
        self._rows.append(constraint)
        self._invalidate()
        return constraint

    def add_rows(
        self,
        data: Union[Sequence[float], FloatArray],
        rows: Union[Sequence[int], IntArray],
        cols: Union[Sequence[int], IntArray],
        senses: Union[str, Sequence[str], npt.NDArray[np.int8]],
        rhs: Union[Sequence[float], FloatArray],
    ) -> None:
        """Bulk-append rows as COO arrays (``rows`` local to this batch)."""
        rhs_arr = _as_float_array(rhs)
        block = _RowBlock(
            data=_as_float_array(data),
            rows=_as_index_array(rows),
            cols=_as_index_array(cols),
            senses=sense_codes(senses, rhs_arr.shape[0]),
            rhs=rhs_arr,
        )
        self._rows.append(block)
        self._invalidate()

    def minimize(self, expr: LinExpr) -> None:
        self._objective = expr
        self._objective_vector = None
        self._invalidate()

    def minimize_coefficients(
        self, c: Union[Sequence[float], FloatArray]
    ) -> None:
        """Set the objective as one dense coefficient vector."""
        self._objective_vector = _as_float_array(c)
        self._objective = None
        self._invalidate()

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return sum(
            1 if isinstance(row, Constraint) else row.n_rows
            for row in self._rows
        )

    # ------------------------------------------------------------------
    # Compiling / solving
    # ------------------------------------------------------------------
    def compile(self) -> CompiledLP:
        """Assemble the compiled (solver-ready, reusable) form."""
        n = self.num_variables
        if self._objective_vector is not None:
            if self._objective_vector.shape[0] != n:
                raise ValueError(
                    f"objective vector has {self._objective_vector.shape[0]} "
                    f"coefficients for {n} variables"
                )
            c = self._objective_vector.copy()
        elif self._objective is not None:
            c = np.zeros(n)
            for variable, coefficient in self._objective.terms.items():
                c[variable.index] += coefficient
        else:
            raise ValueError("no objective set; call minimize() first")

        data_parts: List[FloatArray] = []
        row_parts: List[IntArray] = []
        col_parts: List[IntArray] = []
        sense_parts: List[npt.NDArray[np.int8]] = []
        rhs_parts: List[FloatArray] = []
        offset = 0
        for row in self._rows:
            if isinstance(row, Constraint):
                terms = row.expr.terms
                cols = np.fromiter(
                    (variable.index for variable in terms), dtype=np.int64,
                    count=len(terms),
                )
                vals = np.fromiter(
                    (coefficient for coefficient in terms.values()),
                    dtype=np.float64, count=len(terms),
                )
                data_parts.append(vals)
                col_parts.append(cols)
                row_parts.append(np.full(len(terms), offset, dtype=np.int64))
                sense_parts.append(
                    np.array([_SENSE_CODE[row.sense]], dtype=np.int8)
                )
                rhs_parts.append(np.array([row.rhs], dtype=np.float64))
                offset += 1
            else:
                data_parts.append(row.data)
                col_parts.append(row.cols)
                row_parts.append(row.rows + offset)
                sense_parts.append(row.senses)
                rhs_parts.append(row.rhs)
                offset += row.n_rows

        def _concat_f(parts: List[FloatArray]) -> FloatArray:
            return np.concatenate(parts) if parts else np.empty(0)

        lower = np.asarray(self._lower, dtype=np.float64)
        upper = np.asarray(
            [np.inf if u is None else u for u in self._upper],
            dtype=np.float64,
        )
        return CompiledLP.from_coo(
            n_variables=n,
            data=_concat_f(data_parts),
            rows=(
                np.concatenate(row_parts)
                if row_parts
                else np.empty(0, dtype=np.int64)
            ),
            cols=(
                np.concatenate(col_parts)
                if col_parts
                else np.empty(0, dtype=np.int64)
            ),
            senses=(
                np.concatenate(sense_parts)
                if sense_parts
                else np.empty(0, dtype=np.int8)
            ),
            rhs=_concat_f(rhs_parts),
            c=c,
            lower=lower,
            upper=upper,
        )

    def solve(self, backend: Optional[str] = None) -> Solution:
        """Solve (compiling if needed); raises on infeasible/unbounded."""
        if self._compiled is None:
            recorder = _recorder()
            attrs: Optional[Dict[str, object]] = None
            if recorder.enabled:
                attrs = {
                    "backend": resolve_backend(backend),
                    "warm": False,
                    "n_variables": self.num_variables,
                    "n_constraints": self.num_constraints,
                }
            with recorder.span("lp_assemble", attrs):
                self._compiled = self.compile()
        return self._compiled.solve(backend)

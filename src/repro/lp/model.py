"""A minimal LP modelling layer over scipy's HiGHS backend.

Design goals, in order: correctness, fast model assembly (sparse matrices
built from coordinate lists, no per-coefficient Python object churn beyond
plain tuples), and a small, explicit API::

    lp = LinearProgram()
    x = lp.variable("x", lower=0.0)
    y = lp.variable("y", lower=0.0)
    lp.add_constraint(LinExpr({x: 1.0, y: 2.0}), "<=", 10.0)
    lp.minimize(LinExpr({x: -1.0, y: -1.0}))
    solution = lp.solve()
    solution.value(x)

Only what the routing formulations need is implemented: continuous
variables, <= / >= / == constraints and a linear objective (minimization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

#: Lazily bound telemetry module (a module-level import would drag the
#: whole experiments package into every LP import; see
#: :mod:`repro.net.paths` for the same idiom).
_telemetry = None


def _recorder():
    global _telemetry
    if _telemetry is None:
        from repro.experiments import telemetry

        _telemetry = telemetry
    return _telemetry.recorder()


class InfeasibleError(Exception):
    """The LP has no feasible point."""


class UnboundedError(Exception):
    """The LP objective is unbounded below."""


@dataclass(frozen=True)
class Variable:
    """A handle to one LP column."""

    index: int
    name: str

    def __mul__(self, coefficient: float) -> "LinExpr":
        return LinExpr({self: float(coefficient)})

    __rmul__ = __mul__

    def __add__(self, other: Union["Variable", "LinExpr"]) -> "LinExpr":
        return LinExpr({self: 1.0}) + other


class LinExpr:
    """A linear expression: a mapping from variables to coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Variable, float]] = None) -> None:
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}

    def add_term(self, variable: Variable, coefficient: float) -> "LinExpr":
        """Accumulate ``coefficient * variable`` in place (returns self)."""
        self.terms[variable] = self.terms.get(variable, 0.0) + float(coefficient)
        return self

    def __add__(self, other: Union["LinExpr", Variable]) -> "LinExpr":
        result = LinExpr(self.terms)
        if isinstance(other, Variable):
            result.add_term(other, 1.0)
        else:
            for variable, coefficient in other.terms.items():
                result.add_term(variable, coefficient)
        return result

    def __mul__(self, scalar: float) -> "LinExpr":
        return LinExpr(
            {variable: coefficient * scalar for variable, coefficient in self.terms.items()}
        )

    __rmul__ = __mul__

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        return " ".join(parts) if parts else "0"


@dataclass
class Constraint:
    """One row of the LP: ``expr sense rhs``."""

    expr: LinExpr
    sense: str
    rhs: float

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {self.sense!r}")


@dataclass
class Solution:
    """A solved LP: objective value plus the primal point."""

    objective: float
    _values: np.ndarray

    def value(self, variable: Variable) -> float:
        return float(self._values[variable.index])

    def values(self, variables: Iterable[Variable]) -> List[float]:
        return [self.value(variable) for variable in variables]


class LinearProgram:
    """An LP under construction.

    Variables default to being non-negative and unbounded above, which is
    the natural domain for flow fractions, loads and overloads.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._lower: List[float] = []
        self._upper: List[Optional[float]] = []
        self._constraints: List[Constraint] = []
        self._objective: Optional[LinExpr] = None

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------
    def variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> Variable:
        """Create a continuous variable with the given bounds."""
        if upper is not None and upper < lower:
            raise ValueError(f"variable {name!r}: upper {upper} < lower {lower}")
        index = len(self._names)
        self._names.append(name)
        self._lower.append(float(lower))
        self._upper.append(None if upper is None else float(upper))
        return Variable(index, name)

    def variables(
        self, prefix: str, count: int, lower: float = 0.0, upper: Optional[float] = None
    ) -> List[Variable]:
        """Create ``count`` variables named ``prefix[i]``."""
        return [self.variable(f"{prefix}[{i}]", lower, upper) for i in range(count)]

    def add_constraint(
        self, expr: Union[LinExpr, Variable], sense: str, rhs: float
    ) -> Constraint:
        if isinstance(expr, Variable):
            expr = LinExpr({expr: 1.0})
        constraint = Constraint(expr, sense, float(rhs))
        self._constraints.append(constraint)
        return constraint

    def minimize(self, expr: LinExpr) -> None:
        self._objective = expr

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Solve with HiGHS; raises on infeasible/unbounded models."""
        if self._objective is None:
            raise ValueError("no objective set; call minimize() first")
        n = self.num_variables
        c = np.zeros(n)
        for variable, coefficient in self._objective.terms.items():
            c[variable.index] += coefficient

        ub_rows: List[Tuple[LinExpr, float, float]] = []  # (expr, sign, rhs)
        eq_rows: List[Tuple[LinExpr, float]] = []
        for constraint in self._constraints:
            if constraint.sense == "<=":
                ub_rows.append((constraint.expr, 1.0, constraint.rhs))
            elif constraint.sense == ">=":
                ub_rows.append((constraint.expr, -1.0, -constraint.rhs))
            else:
                eq_rows.append((constraint.expr, constraint.rhs))

        a_ub, b_ub = _assemble(ub_rows, n)
        a_eq, b_eq = _assemble([(expr, rhs) for expr, rhs in eq_rows], n, signed=False)

        bounds = list(zip(self._lower, self._upper))
        recorder = _recorder()
        attrs = None
        if recorder.enabled:
            attrs = {
                "n_variables": n,
                "n_constraints": self.num_constraints,
            }
        with recorder.span("lp_solve", attrs):
            result = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )
        if result.status == 2:
            raise InfeasibleError("LP is infeasible")
        if result.status == 3:
            raise UnboundedError("LP is unbounded")
        if not result.success:  # pragma: no cover - solver failure
            raise RuntimeError(f"solver failed: {result.message}")
        return Solution(float(result.fun), np.asarray(result.x))


def _assemble(
    rows: List, n: int, signed: bool = True
) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
    """Build a sparse constraint matrix from (expr[, sign], rhs) rows."""
    if not rows:
        return None, None
    data: List[float] = []
    row_idx: List[int] = []
    col_idx: List[int] = []
    rhs_values: List[float] = []
    for i, row in enumerate(rows):
        if signed:
            expr, sign, rhs = row
        else:
            expr, rhs = row
            sign = 1.0
        rhs_values.append(rhs)
        for variable, coefficient in expr.terms.items():
            if coefficient == 0.0:
                continue
            data.append(sign * coefficient)
            row_idx.append(i)
            col_idx.append(variable.index)
    matrix = sparse.csr_matrix(
        (data, (row_idx, col_idx)), shape=(len(rows), n)
    )
    return matrix, np.asarray(rhs_values)

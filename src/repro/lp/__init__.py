"""Linear programming substrate.

A small modelling layer over :func:`scipy.optimize.linprog` (HiGHS).  The
paper's optimizations — the latency-optimal path LP (its Figure 12), the
MinMax two-stage LPs, the locality redistribution LP and the traffic-matrix
scaler — are all built on this.
"""

from repro.lp.model import (
    Constraint,
    InfeasibleError,
    LinearProgram,
    LinExpr,
    Solution,
    UnboundedError,
    Variable,
)

__all__ = [
    "Constraint",
    "InfeasibleError",
    "LinearProgram",
    "LinExpr",
    "Solution",
    "UnboundedError",
    "Variable",
]

"""Linear programming substrate.

A small modelling layer over the HiGHS solver — via
:func:`scipy.optimize.linprog` or (when installed) the native ``highspy``
bindings, selected by ``REPRO_LP_BACKEND``.  The paper's optimizations —
the latency-optimal path LP (its Figure 12), the MinMax two-stage LPs,
the locality redistribution LP and the traffic-matrix scaler — are all
built on this.  :class:`CompiledLP` is the reusable solver-ready form:
vectorized assembly once, in-place payload mutation and warm re-solves
after.
"""

from repro.lp.model import (
    BACKEND_ENV,
    CompiledLP,
    Constraint,
    InfeasibleError,
    LinearProgram,
    LinExpr,
    Solution,
    UnboundedError,
    Variable,
    available_backends,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "CompiledLP",
    "Constraint",
    "InfeasibleError",
    "LinearProgram",
    "LinExpr",
    "Solution",
    "UnboundedError",
    "Variable",
    "available_backends",
    "resolve_backend",
]

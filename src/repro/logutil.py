"""Logging for the repro stack: one namespaced logger, CLI-configurable.

Everything under ``repro`` logs through children of the single ``repro``
logger (``get_logger(__name__)``), so one ``--log-level`` flag governs
the whole stack and library code never calls ``logging.basicConfig`` or
prints to stderr directly.  The engine's serial-fallback notice — a
performance bug waiting to be misread, not an API misuse — is the
canonical client: it used to be a :class:`RuntimeWarning`, which muddled
"your code is wrong" semantics with "this run is slower than you think"
reporting and was awkward to silence or route.

Library modules call :func:`get_logger` only; :func:`configure_logging`
is for *entry points* (the experiments CLI, scripts) and is safe to call
repeatedly — it installs at most one stderr handler on the ``repro``
root and just re-levels it afterwards, so tests and nested CLIs never
stack duplicate handlers.
"""

from __future__ import annotations

import logging
from typing import Optional, Union

#: The stack's root logger name; every module logger is a child.
ROOT_NAME = "repro"

#: Marker attribute identifying the handler :func:`configure_logging`
#: installed, so repeat calls re-level instead of stacking handlers.
_HANDLER_MARK = "_repro_cli_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or a child of it for a module ``__name__``."""
    if not name or name == ROOT_NAME:
        return logging.getLogger(ROOT_NAME)
    if not name.startswith(ROOT_NAME + "."):
        name = f"{ROOT_NAME}.{name}"
    return logging.getLogger(name)


def configure_logging(level: Union[int, str] = "warning") -> logging.Logger:
    """Point the ``repro`` logger at stderr at ``level`` (idempotent).

    ``level`` is a ``logging`` level name (case-insensitive) or numeric
    value.  Returns the configured root logger.  Handlers installed by
    the host application are left alone, and records still propagate to
    the global root, so test harnesses (pytest's ``caplog``) and host
    logging setups observe everything the CLI handler prints.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_NAME)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_MARK, False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    logger.setLevel(level)
    handler.setLevel(level)
    return logger
